"""Rule-based logical-plan optimizer (the Catalyst-analogue layer).

Three rewrite rules, all driven by the same schema-level metadata the
provenance capture already maintains (``accessed_paths`` /
``manipulation_pairs``, paper Tab. 5):

* **Filter pushdown** (``pushdown``): moves a filter below a select,
  flatten, or with_column when every path its predicate accesses can be
  rewritten through the child's projections.  Pushing a filter changes
  which operator drops each row -- and therefore the captured id
  associations -- so the rule only fires when no attached capture hook
  demands plan fidelity (i.e. in plain runs and metric-only runs).
* **Projection pruning** (``prune``): computes, per plan edge, the set of
  top-level attributes some downstream operator still accesses, and inserts
  a physical :class:`~repro.engine.physical.PruneOp` at the head of fused
  chains whose input carries attributes nobody needs.  Requirements are
  seeded with *everything* at the sink and only narrowed by operators that
  provably rebuild their output (select, aggregate); operators whose
  capture metadata is derived from the runtime schema (map, distinct, join,
  union) conservatively require everything, which keeps registered
  accessed/manipulated paths, runtime error behaviour, and backtrace
  answers identical to the unoptimized path.
* **Operator fusion** (``fuse``): consecutive narrow operators whose
  intermediate result has a single consumer execute as one pipelined stage
  (see :mod:`repro.engine.physical`); with it comes the per-partition limit
  prefix, which truncates partitions feeding a global limit (plain runs
  only, for the same association-fidelity reason as pushdown).

:func:`plan_physical` is the compiler entry the executor calls: it applies
the enabled rules and returns the compiled :class:`PhysicalPlan` plus an
:class:`OptimizationReport` of what fired (surfaced by ``repro explain``).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.paths import Path
from repro.engine.config import EngineConfig
from repro.engine.expressions import (
    AliasedExpr,
    BinaryExpr,
    ColumnExpr,
    Expression,
    FunctionExpr,
    LiteralExpr,
    StructExpr,
    UnaryExpr,
)
from repro.engine.hooks import CaptureHook
from repro.engine.physical import PhysicalPlan, compile_stages
from repro.engine.plan import (
    AggregateNode,
    DistinctNode,
    FilterNode,
    FlattenNode,
    JoinNode,
    LimitNode,
    MapNode,
    PlanNode,
    ReadNode,
    SelectNode,
    SortNode,
    UnionNode,
    WithColumnNode,
)
from repro.errors import ExecutionError

__all__ = [
    "AppliedRule",
    "OptimizationReport",
    "plan_physical",
    "pushdown_filters",
    "prune_attribute_sets",
]


class AppliedRule:
    """One rewrite the optimizer performed."""

    __slots__ = ("rule", "description")

    def __init__(self, rule: str, description: str):
        self.rule = rule
        self.description = description

    def __repr__(self) -> str:
        return f"AppliedRule({self.rule}: {self.description})"


class OptimizationReport:
    """The rewrites applied while compiling one plan."""

    def __init__(self) -> None:
        self.applied: list[AppliedRule] = []

    def add(self, rule: str, description: str) -> None:
        self.applied.append(AppliedRule(rule, description))

    def rules_fired(self) -> tuple[str, ...]:
        seen: list[str] = []
        for entry in self.applied:
            if entry.rule not in seen:
                seen.append(entry.rule)
        return tuple(seen)

    def describe(self) -> str:
        if not self.applied:
            return "(no rewrites applied)"
        return "\n".join(f"[{entry.rule}] {entry.description}" for entry in self.applied)

    def __repr__(self) -> str:
        return f"OptimizationReport({len(self.applied)} rewrites)"


# ---------------------------------------------------------------------------
# Filter pushdown
# ---------------------------------------------------------------------------


def _consumer_counts(root: PlanNode) -> dict[int, int]:
    counts: dict[int, int] = {}
    for node in root.walk():
        for child in node.children:
            counts[child.oid] = counts.get(child.oid, 0) + 1
    return counts


def _clone_with_children(node: PlanNode, children: Sequence[PlanNode]) -> PlanNode:
    """Re-create *node* (same oid and parameters) over new children."""
    with_children = getattr(node, "with_children", None)
    if with_children is not None:
        # Nodes outside the core set (e.g. windowed aggregations) rebuild
        # themselves; checked before the isinstance ladder so subclasses are
        # not silently downcast to their base operator.
        return with_children(children)
    if isinstance(node, FilterNode):
        return FilterNode(node.oid, children[0], node.predicate)
    if isinstance(node, SelectNode):
        return SelectNode(node.oid, children[0], node.projections)
    if isinstance(node, MapNode):
        return MapNode(node.oid, children[0], node.fn, node.name)
    if isinstance(node, FlattenNode):
        return FlattenNode(node.oid, children[0], node.col_path, node.new_name, node.outer)
    if isinstance(node, WithColumnNode):
        return WithColumnNode(node.oid, children[0], node.name, node.expression)
    if isinstance(node, AggregateNode):
        return AggregateNode(node.oid, children[0], node.keys, node.aggregates)
    if isinstance(node, DistinctNode):
        return DistinctNode(node.oid, children[0])
    if isinstance(node, SortNode):
        return SortNode(node.oid, children[0], node.keys, node.descending)
    if isinstance(node, LimitNode):
        return LimitNode(node.oid, children[0], node.n)
    if isinstance(node, JoinNode):
        return JoinNode(node.oid, children[0], children[1], node.condition)
    if isinstance(node, UnionNode):
        return UnionNode(node.oid, children[0], children[1])
    raise ExecutionError(f"cannot clone plan node {type(node).__name__}")


def _unalias(expr: Expression) -> Expression:
    while isinstance(expr, AliasedExpr):
        expr = expr.inner
    return expr


def _resolve_through_projection(projection: Expression, rest: Path) -> Path | None:
    """Map an access *below* one projected attribute back to an input path."""
    projection = _unalias(projection)
    if isinstance(projection, ColumnExpr):
        return projection.path.concat(rest)
    if isinstance(projection, StructExpr):
        if rest.is_empty():
            return None  # whole-struct access has no single input path
        head = rest.head()
        if head.pos is not None:
            return None
        for name, member in projection.fields:
            if name == head.name:
                return _resolve_through_projection(member, rest.tail())
        return None
    return None  # computed value: not a copied subtree


def _rewrite_predicate_through_select(
    predicate: Expression, select: SelectNode
) -> Expression | None:
    """Rewrite *predicate* to run below *select*, or ``None`` if impossible."""
    projections = dict(zip(select.output_names, select.projections))

    def resolve(path: Path) -> Path | None:
        head = path.head()
        if head.pos is not None:
            return None
        projection = projections.get(head.name)
        if projection is None:
            return None  # attribute absent after select; evaluation differs below
        return _resolve_through_projection(projection, path.tail())

    def substitute(expr: Expression) -> Expression | None:
        if isinstance(expr, ColumnExpr):
            path = resolve(expr.path)
            return ColumnExpr(path) if path is not None else None
        if isinstance(expr, LiteralExpr):
            return expr
        if isinstance(expr, AliasedExpr):
            inner = substitute(expr.inner)
            return AliasedExpr(inner, expr.name) if inner is not None else None
        if isinstance(expr, UnaryExpr):
            operand = substitute(expr.operand)
            return UnaryExpr(expr.name, operand, expr.fn) if operand is not None else None
        if isinstance(expr, BinaryExpr):
            left = substitute(expr.left)
            right = substitute(expr.right)
            if left is None or right is None:
                return None
            return BinaryExpr(expr.name, left, right, expr.fn)
        if isinstance(expr, FunctionExpr):
            operands = [substitute(operand) for operand in expr.operands]
            if any(operand is None for operand in operands):
                return None
            return FunctionExpr(expr.name, operands, expr.fn)  # type: ignore[arg-type]
        if isinstance(expr, StructExpr):
            fields = [(name, substitute(member)) for name, member in expr.fields]
            if any(member is None for _, member in fields):
                return None
            return StructExpr([(name, member) for name, member in fields])  # type: ignore[list-item]
        return None

    return substitute(predicate)


def _accessed_heads(expr: Expression) -> set[str]:
    return {path.head().name for path in expr.accessed_paths() if not path.is_empty()}


def pushdown_filters(root: PlanNode, report: OptimizationReport) -> PlanNode:
    """Push filters below select/flatten/with_column where paths permit.

    Result-preserving but *association-changing* (rows are dropped by a
    different operator), so callers gate it on no plan-fidelity hooks being
    attached.  Only fires across edges whose producer has a single consumer;
    shared sub-plans are never duplicated.
    """
    consumers = _consumer_counts(root)
    memo: dict[int, PlanNode] = {}

    def push(node: FilterNode) -> PlanNode:
        child = node.children[0]
        if consumers.get(child.oid, 0) != 1:
            return node
        if isinstance(child, SelectNode):
            rewritten = _rewrite_predicate_through_select(node.predicate, child)
            if rewritten is None:
                return node
            report.add(
                "pushdown",
                f"push filter (oid {node.oid}) below select (oid {child.oid})",
            )
            inner = push(FilterNode(node.oid, child.children[0], rewritten))
            return SelectNode(child.oid, inner, child.projections)
        if isinstance(child, FlattenNode):
            if child.new_name in _accessed_heads(node.predicate):
                return node
            report.add(
                "pushdown",
                f"push filter (oid {node.oid}) below flatten (oid {child.oid})",
            )
            inner = push(FilterNode(node.oid, child.children[0], node.predicate))
            return FlattenNode(child.oid, inner, child.col_path, child.new_name, child.outer)
        if isinstance(child, WithColumnNode):
            if child.name in _accessed_heads(node.predicate):
                return node
            report.add(
                "pushdown",
                f"push filter (oid {node.oid}) below with_column (oid {child.oid})",
            )
            inner = push(FilterNode(node.oid, child.children[0], node.predicate))
            return WithColumnNode(child.oid, inner, child.name, child.expression)
        return node

    def rewrite(node: PlanNode) -> PlanNode:
        cached = memo.get(node.oid)
        if cached is not None:
            return cached
        children = tuple(rewrite(child) for child in node.children)
        current = node if children == node.children else _clone_with_children(node, children)
        if isinstance(current, FilterNode):
            current = push(current)
        memo[node.oid] = current
        return current

    return rewrite(root)


# ---------------------------------------------------------------------------
# Projection pruning: required-attribute analysis
# ---------------------------------------------------------------------------

#: Sentinel requirement: every attribute must survive.
_ALL = None


def _heads(paths: Iterable[Path]) -> set[str]:
    return {path.head().name for path in paths if not path.is_empty()}


def _merge(into: dict[int, set[str] | None], oid: int, requirement: set[str] | None) -> None:
    if requirement is _ALL or into.get(oid, set()) is _ALL:
        into[oid] = _ALL
        return
    existing = into.setdefault(oid, set())
    assert existing is not None
    existing.update(requirement)


def _child_requirements(
    node: PlanNode, out_req: set[str] | None
) -> list[set[str] | None]:
    """Requirement each child's output must satisfy, given the node's own."""
    if isinstance(node, SelectNode):
        return [_heads(node.accessed_paths(0))]
    if isinstance(node, AggregateNode):
        return [_heads(node.accessed_paths(0))]
    if isinstance(node, (FilterNode, SortNode)):
        if out_req is _ALL:
            return [_ALL]
        return [set(out_req) | _heads(node.accessed_paths(0))]
    if isinstance(node, LimitNode):
        return [_ALL if out_req is _ALL else set(out_req)]
    if isinstance(node, FlattenNode):
        if out_req is _ALL:
            return [_ALL]
        required = set(out_req) - {node.new_name}
        required.add(node.col_path.head().name)
        return [required]
    if isinstance(node, WithColumnNode):
        if out_req is _ALL:
            return [_ALL]
        required = set(out_req) - {node.name}
        required |= _heads(node.accessed_paths(0))
        return [required]
    # map (opaque UDF), distinct / join / union (capture metadata and error
    # behaviour derive from the full runtime schema): require everything.
    return [_ALL for _ in node.children]


def prune_attribute_sets(root: PlanNode) -> dict[int, frozenset[str]]:
    """Per-node attribute sets that must survive the node's output.

    Returns entries only for nodes where pruning is possible (requirement
    narrower than *everything*).  Names any flatten introduces are globally
    protected so a name-clash that would raise in the unoptimized plan still
    raises.
    """
    protected = {
        node.new_name for node in root.walk() if isinstance(node, FlattenNode)
    }
    required: dict[int, set[str] | None] = {root.oid: _ALL}
    for node in reversed(root.walk()):
        out_req = required.get(node.oid, set())
        for child, child_req in zip(node.children, _child_requirements(node, out_req)):
            _merge(required, child.oid, child_req)
    sets: dict[int, frozenset[str]] = {}
    for oid, requirement in required.items():
        if requirement is not _ALL:
            sets[oid] = frozenset(requirement | protected)
    return sets


# ---------------------------------------------------------------------------
# Compiler entry
# ---------------------------------------------------------------------------


def plan_physical(
    root: PlanNode,
    config: EngineConfig,
    hooks: Sequence[CaptureHook] = (),
) -> PhysicalPlan:
    """Optimize *root* under *config* and compile it into a physical plan."""
    report = OptimizationReport()
    preserve_store = any(hook.needs_ids or hook.plan_fidelity for hook in hooks)
    executed = root
    if config.rule_enabled("pushdown") and not preserve_store:
        executed = pushdown_filters(executed, report)
    prune_sets: dict[int, frozenset[str]] = {}
    if config.rule_enabled("prune"):
        prune_sets = prune_attribute_sets(executed)
    fuse = config.rule_enabled("fuse")
    return compile_stages(
        root,
        executed,
        fuse=fuse,
        prune_sets=prune_sets,
        limit_prefix=fuse and not preserve_store,
        report=report,
    )
