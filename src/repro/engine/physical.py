"""Physical plans: fused stages compiled from the logical DAG.

The logical plan (``engine/plan.py``) describes *what* to compute; a
:class:`PhysicalPlan` describes *how*: an ordered list of stages, each either
a source scan, a shuffle/materialisation point (join, aggregate, union,
distinct, sort, limit), or a **fused pipeline** of consecutive narrow
operators (filter / select / map / with_column / flatten and
optimizer-inserted helpers) that runs partition-at-a-time without
materialising intermediates between operators.

Two properties make fused execution equivalent to the seed's
operator-at-a-time interpreter:

* **Stage order** follows the logical DAG's children-first walk, the same
  order the seed's recursive ``_run`` executed operators in.
* **Id assignment is split out of computation.** A fused stage first runs
  its operator chain per partition (parallelisable; records, per operator,
  which input row produced each output row), then a serial finalisation pass
  replays those traces operator-by-operator across partitions in order,
  assigning provenance ids.  That reproduces the seed's global id sequence
  byte-for-byte, so captured stores are identical whatever the scheduler.

Schema handling mirrors the seed exactly: operators that preserve structure
(filter, sort, limit, distinct, and the optimizer's prune) propagate their
input schema; operators that rebuild items (select, map, flatten, join,
aggregate, read) fall back to inference over the first ``SCHEMA_SAMPLE``
output items.  Attribute-level schemas are additionally propagated statically
at compile time for planning and ``repro explain`` -- they become unknown
only downstream of a UDF (``map``) until a projection rebuilds the shape.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.faults import FaultPlan

from repro.core.operator_provenance import (
    Associations,
    FlattenAssociations,
    UNDEFINED,
    UnaryAssociations,
)
from repro.engine.columnar import (
    ColumnarPartition,
    StructColumn,
    TAG_BAG,
    TAG_MISSING,
    TAG_NONE,
    TAG_SET,
    VariantColumn,
    column_for_values,
    evaluate_batch,
    null_column,
)
from repro.engine.expressions import AliasedExpr, ColumnExpr
from repro.engine.plan import (
    AggregateNode,
    DistinctNode,
    FilterNode,
    FlattenNode,
    JoinNode,
    LimitNode,
    MapNode,
    PlanNode,
    ReadNode,
    SelectNode,
    SortNode,
    UnionNode,
    WithColumnNode,
)
from repro.errors import ExecutionError, PlanError
from repro.nested.schema import Schema
from repro.nested.types import StructType
from repro.nested.values import Bag, DataItem, NestedSet, coerce_value

__all__ = [
    "SCHEMA_SAMPLE",
    "NarrowOp",
    "FilterOp",
    "SelectOp",
    "MapOp",
    "WithColumnOp",
    "FlattenOp",
    "PruneOp",
    "LimitPrefixOp",
    "Stage",
    "ReadStage",
    "FusedStage",
    "WideStage",
    "StageTask",
    "StageTaskResult",
    "PhysicalPlan",
    "compile_stages",
    "narrow_op_for",
    "NARROW_NODE_TYPES",
]

#: Number of items sampled when inferring a dataset schema at runtime.
#: Shared by every consumer that re-infers a schema from stored rows
#: (warehouse loads, JSON restores), so persisted and live executions agree.
SCHEMA_SAMPLE = 200


# ---------------------------------------------------------------------------
# Narrow operators: the per-partition building blocks of a fused stage
# ---------------------------------------------------------------------------


class NarrowOp:
    """One pipelined operator inside a fused stage.

    ``apply`` transforms a partition's items and -- when *traced* -- returns
    per-output entries describing which input row produced each output row,
    for the serial id-assignment pass.  ``entry_kind`` tells the finaliser
    how to decode the entries: ``"identity"`` (1:1 in order, entries is
    ``None``), ``"filter"`` (list of kept source indices), or ``"flatten"``
    (list of ``(source index, position)`` pairs).
    """

    #: The logical node this op realises; ``None`` for optimizer helpers.
    node: PlanNode | None = None
    #: Whether the op registers provenance (optimizer helpers do not).
    registers = True
    entry_kind = "identity"

    def apply(self, items: list[DataItem], traced: bool) -> tuple[list[DataItem], Any]:
        raise NotImplementedError

    def apply_batch(
        self, part: ColumnarPartition, traced: bool
    ) -> tuple[ColumnarPartition, Any, bool]:
        """Columnar-layout variant of :meth:`apply`.

        Returns ``(partition, entries, kernel)`` where *kernel* reports
        whether a batch kernel ran (``True``) or the op fell back to
        decoding the partition and running :meth:`apply` row-at-a-time
        (``False`` -- the path for opaque UDFs and unsupported expression
        shapes).  Entries are identical to :meth:`apply`'s either way, so
        the serial id-assignment pass is layout-oblivious.
        """
        items, entries = self.apply(part.to_items(), traced)
        return ColumnarPartition.from_items(items), entries, False

    def propagate_schema(self, schema: Schema) -> Schema | None:
        """Exact output schema given the input schema, or ``None`` to sample."""
        return None

    def check_input_schema(self, schema: Schema) -> None:
        """Validate against the runtime input schema (may raise PlanError)."""

    def new_associations(self) -> Associations:
        return UnaryAssociations()

    def input_spec(self) -> tuple[object, object]:
        """``(accessed paths, manipulation pairs)`` for registration."""
        assert self.node is not None
        return self.node.accessed_paths(0), self.node.manipulation_pairs()

    def describe(self) -> str:
        return self.node.label() if self.node is not None else type(self).__name__

    def static_attributes(self, attrs: tuple[str, ...] | None) -> tuple[str, ...] | None:
        """Attribute-level output schema given the input attributes."""
        return attrs

    def __getstate__(self) -> dict[str, Any]:
        """Pickle without the upstream plan graph.

        ``node.children`` chains back to the ``ReadNode`` whose loader closes
        over the full input dataset, so a naive pickle ships the entire
        source collection with *every* stage task -- the process-pool
        serialization tax.  Workers only run ``apply``/``apply_batch``, which
        read the node's own fields, so the pickled node is a childless clone.
        """
        state = dict(self.__dict__)
        node = state.get("node")
        if isinstance(node, PlanNode) and node.children:
            clone = object.__new__(type(node))
            clone.__dict__ = {**node.__dict__, "children": ()}
            state["node"] = clone
        return state


def _expr_column(part: ColumnarPartition, expression: Any) -> VariantColumn | None:
    """Evaluate a projection expression into a full-length column, or None.

    A bare single-step column reference reuses the partition's attribute
    column zero-copy (holes become explicit nulls, matching ``col("absent")``
    evaluating to ``None``); everything else goes through
    :func:`evaluate_batch`.  ``None`` means unsupported -- row fallback.
    """
    while isinstance(expression, AliasedExpr):
        expression = expression.inner
    if isinstance(expression, ColumnExpr):
        steps = expression.path.steps
        if len(steps) == 1 and steps[0].pos is None:
            column = part.struct.attribute(steps[0].name)
            if column is None:
                return null_column(len(part))
            return column.without_missing()
    values = evaluate_batch(expression, part)
    if values is None:
        return None
    return column_for_values(values)


class FilterOp(NarrowOp):
    entry_kind = "filter"

    def __init__(self, node: FilterNode):
        self.node = node

    def apply_batch(
        self, part: ColumnarPartition, traced: bool
    ) -> tuple[ColumnarPartition, Any, bool]:
        mask = evaluate_batch(self.node.predicate, part)
        if mask is None:
            return NarrowOp.apply_batch(self, part, traced)
        kept = [index for index, keep in enumerate(mask) if keep]
        out = part if len(kept) == len(part) else part.take(kept)
        return out, (kept if traced else None), True

    def apply(self, items: list[DataItem], traced: bool) -> tuple[list[DataItem], Any]:
        predicate = self.node.predicate
        if not traced:
            return [item for item in items if predicate.evaluate(item)], None
        kept: list[DataItem] = []
        entries: list[int] = []
        for index, item in enumerate(items):
            if predicate.evaluate(item):
                kept.append(item)
                entries.append(index)
        return kept, entries

    def propagate_schema(self, schema: Schema) -> Schema | None:
        return schema

    def input_spec(self) -> tuple[object, object]:
        return self.node.accessed_paths(0), []


class SelectOp(NarrowOp):
    def __init__(self, node: SelectNode):
        self.node = node

    def apply_batch(
        self, part: ColumnarPartition, traced: bool
    ) -> tuple[ColumnarPartition, Any, bool]:
        names = self.node.output_names
        if not names or len(set(names)) != len(names):
            # duplicate output attributes raise per item in the row path
            return NarrowOp.apply_batch(self, part, traced)
        columns: list[VariantColumn] = []
        for projection in self.node.projections:
            column = _expr_column(part, projection)
            if column is None:
                return NarrowOp.apply_batch(self, part, traced)
            columns.append(column)
        struct = StructColumn.uniform(tuple(names), columns)
        return ColumnarPartition(struct), None, True

    def apply(self, items: list[DataItem], traced: bool) -> tuple[list[DataItem], Any]:
        names = self.node.output_names
        projections = self.node.projections
        out = [
            DataItem(
                (name, projection.evaluate(item))
                for name, projection in zip(names, projections)
            )
            for item in items
        ]
        return out, None

    def static_attributes(self, attrs: tuple[str, ...] | None) -> tuple[str, ...] | None:
        return self.node.output_names


class MapOp(NarrowOp):
    def __init__(self, node: MapNode):
        self.node = node

    def apply(self, items: list[DataItem], traced: bool) -> tuple[list[DataItem], Any]:
        node = self.node
        out: list[DataItem] = []
        for item in items:
            try:
                out_value = node.fn(item)
            except Exception as exc:
                raise ExecutionError(f"map {node.name!r} failed on item: {exc}") from exc
            out_item = coerce_value(out_value)
            if not isinstance(out_item, DataItem):
                raise ExecutionError(
                    f"map {node.name!r} must return a data item, got {type(out_value).__name__}"
                )
            out.append(out_item)
        return out, None

    def input_spec(self) -> tuple[object, object]:
        return UNDEFINED, UNDEFINED

    def static_attributes(self, attrs: tuple[str, ...] | None) -> tuple[str, ...] | None:
        return None  # UDF output: unknown until sampled


class WithColumnOp(NarrowOp):
    def __init__(self, node: WithColumnNode):
        self.node = node

    def apply_batch(
        self, part: ColumnarPartition, traced: bool
    ) -> tuple[ColumnarPartition, Any, bool]:
        column = _expr_column(part, self.node.expression)
        if column is None:
            return NarrowOp.apply_batch(self, part, traced)
        struct = part.struct.with_attribute(self.node.name, column)
        return ColumnarPartition(struct), None, True

    def apply(self, items: list[DataItem], traced: bool) -> tuple[list[DataItem], Any]:
        name = self.node.name
        expression = self.node.expression
        out = [item.replace(**{name: expression.evaluate(item)}) for item in items]
        return out, None

    def static_attributes(self, attrs: tuple[str, ...] | None) -> tuple[str, ...] | None:
        if attrs is None:
            return None
        if self.node.name in attrs:
            return attrs
        return attrs + (self.node.name,)


class FlattenOp(NarrowOp):
    entry_kind = "flatten"

    def __init__(self, node: FlattenNode):
        self.node = node

    def check_input_schema(self, schema: Schema) -> None:
        if schema.struct.has_field(self.node.new_name):
            raise PlanError(f"flatten output attribute {self.node.new_name!r} already exists")

    def apply_batch(
        self, part: ColumnarPartition, traced: bool
    ) -> tuple[ColumnarPartition, Any, bool]:
        node = self.node
        steps = node.col_path.steps
        if len(steps) != 1 or steps[0].pos is not None:
            return NarrowOp.apply_batch(self, part, traced)
        column = part.struct.attribute(steps[0].name)
        rows: list[int] = []  # input row feeding each output row
        elems: list[int] = []  # element index in the list store (-1: null)
        entries: list[tuple[int, int]] | None = [] if traced else None
        outer = node.outer
        for index in range(len(part)):
            if column is None:
                tag = TAG_MISSING
            else:
                tag = column.tags[index]
            if tag == TAG_MISSING or tag == TAG_NONE:
                elements = range(0)
            elif tag == TAG_BAG or tag == TAG_SET:
                assert column.lists is not None
                elements = column.lists.element_range(column.pos[index])
            else:
                # a non-collection value: the row path raises ExecutionError
                return NarrowOp.apply_batch(self, part, traced)
            if len(elements) == 0:
                if outer:
                    rows.append(index)
                    elems.append(-1)
                    if entries is not None:
                        entries.append((index, 0))
                continue
            position = 1
            for element_index in elements:
                rows.append(index)
                elems.append(element_index)
                if entries is not None:
                    entries.append((index, position))
                position += 1
        base = part.struct.take_shared(rows)
        if column is not None and column.lists is not None:
            new_column = column.lists.elements.take_shared(elems)
        else:  # only outer-null rows survive (or none at all)
            new_column = null_column(len(rows))
        struct = base.with_attribute(node.new_name, new_column)
        return ColumnarPartition(struct), entries, True

    def apply(self, items: list[DataItem], traced: bool) -> tuple[list[DataItem], Any]:
        node = self.node
        out: list[DataItem] = []
        entries: list[tuple[int, int]] | None = [] if traced else None
        for index, item in enumerate(items):
            collection = (
                node.col_path.evaluate(item) if node.col_path.resolves_in(item) else None
            )
            if collection is None:
                elements: tuple[Any, ...] = ()
            elif isinstance(collection, (Bag, NestedSet)):
                elements = collection.items()
            else:
                raise ExecutionError(
                    f"flatten path {node.col_path} is not a collection "
                    f"(got {type(collection).__name__})"
                )
            if not elements and node.outer:
                out.append(item.replace(**{node.new_name: None}))
                if entries is not None:
                    entries.append((index, 0))
                continue
            for position, element in enumerate(elements, start=1):
                out.append(item.replace(**{node.new_name: element}))
                if entries is not None:
                    entries.append((index, position))
        return out, entries

    def new_associations(self) -> Associations:
        return FlattenAssociations()

    def static_attributes(self, attrs: tuple[str, ...] | None) -> tuple[str, ...] | None:
        if attrs is None:
            return None
        if self.node.new_name in attrs:
            return attrs  # runtime raises; keep planning honest
        return attrs + (self.node.new_name,)


class PruneOp(NarrowOp):
    """Optimizer-inserted projection: drop attributes nobody downstream reads.

    Purely physical -- it registers no provenance and every logical
    operator's associations are unchanged, because pruning only removes
    attributes that are re-built away by a downstream select/aggregate
    anyway.  Items that already carry only kept attributes pass through
    untouched (no copy).
    """

    registers = False

    def __init__(self, keep: frozenset[str]):
        self.keep = keep

    def apply_batch(
        self, part: ColumnarPartition, traced: bool
    ) -> tuple[ColumnarPartition, Any, bool]:
        keep = self.keep
        if all(name in keep for name in part.struct.columns):
            return part, None, True
        return ColumnarPartition(part.struct.project(tuple(keep))), None, True

    def apply(self, items: list[DataItem], traced: bool) -> tuple[list[DataItem], Any]:
        keep = self.keep
        out: list[DataItem] = []
        for item in items:
            attributes = item.attributes()
            if all(name in keep for name in attributes):
                out.append(item)
            else:
                out.append(item.project(name for name in attributes if name in keep))
        return out, None

    def propagate_schema(self, schema: Schema) -> Schema | None:
        fields = [
            (name, typ) for name, typ in schema.struct.fields if name in self.keep
        ]
        return Schema(StructType(fields))

    def describe(self) -> str:
        return f"prune[keep {', '.join(sorted(self.keep))}]"

    def static_attributes(self, attrs: tuple[str, ...] | None) -> tuple[str, ...] | None:
        if attrs is None:
            return None
        return tuple(name for name in attrs if name in self.keep)


class LimitPrefixOp(NarrowOp):
    """Optimizer-inserted per-partition prefix for a downstream global limit.

    Keeping only the first *n* rows of every partition cannot change the
    first *n* rows of the partition concatenation, so the global limit stage
    downstream produces identical results; inserted only when no hook
    requires plan-faithful associations (upstream operators would otherwise
    lose association records for the truncated rows).
    """

    registers = False

    def __init__(self, n: int):
        self.n = n

    def apply_batch(
        self, part: ColumnarPartition, traced: bool
    ) -> tuple[ColumnarPartition, Any, bool]:
        return part.slice(self.n), None, True

    def apply(self, items: list[DataItem], traced: bool) -> tuple[list[DataItem], Any]:
        return items[: self.n], None

    def propagate_schema(self, schema: Schema) -> Schema | None:
        return schema

    def describe(self) -> str:
        return f"limit_prefix[{self.n}]"


NARROW_NODE_TYPES: tuple[type, ...] = (
    FilterNode,
    SelectNode,
    MapNode,
    WithColumnNode,
    FlattenNode,
)

_NARROW_OPS: dict[type, type[NarrowOp]] = {
    FilterNode: FilterOp,
    SelectNode: SelectOp,
    MapNode: MapOp,
    WithColumnNode: WithColumnOp,
    FlattenNode: FlattenOp,
}


def narrow_op_for(node: PlanNode) -> NarrowOp:
    """Wrap a narrow logical node in its physical operator."""
    op_type = _NARROW_OPS.get(type(node))
    if op_type is None:
        raise ExecutionError(f"{type(node).__name__} is not a narrow operator")
    return op_type(node)


# ---------------------------------------------------------------------------
# Stages
# ---------------------------------------------------------------------------


class Stage:
    """One unit of physical execution."""

    kind = "abstract"

    def __init__(self) -> None:
        #: Attribute-level output schema, statically propagated at compile
        #: time; ``None`` downstream of a UDF until a projection rebuilds it.
        self.static_attrs: tuple[str, ...] | None = None
        #: ``"propagated"`` when the runtime schema is carried over from the
        #: input, ``"sampled"`` when it is inferred from SCHEMA_SAMPLE items.
        self.schema_mode = "sampled"

    @property
    def output_oid(self) -> int:
        raise NotImplementedError

    def input_oids(self) -> tuple[int, ...]:
        return ()

    def logical_oids(self) -> tuple[int, ...]:
        """Oids of the logical operators this stage realises."""
        return ()

    def label(self) -> str:
        raise NotImplementedError


class ReadStage(Stage):
    kind = "read"

    def __init__(self, node: ReadNode):
        super().__init__()
        self.node = node

    @property
    def output_oid(self) -> int:
        return self.node.oid

    def logical_oids(self) -> tuple[int, ...]:
        return (self.node.oid,)

    def label(self) -> str:
        return self.node.label()


class FusedStage(Stage):
    """A pipeline of narrow operators over the partitions of one input."""

    kind = "fused"

    def __init__(self, input_oid: int, ops: list[NarrowOp]):
        super().__init__()
        self.input_oid = input_oid
        self.ops = ops
        self.schema_mode = "propagated"  # updated as sampling ops are appended

    @property
    def output_oid(self) -> int:
        for op in reversed(self.ops):
            if op.node is not None:
                return op.node.oid
        raise ExecutionError("fused stage realises no logical operator")

    def input_oids(self) -> tuple[int, ...]:
        return (self.input_oid,)

    def logical_oids(self) -> tuple[int, ...]:
        return tuple(op.node.oid for op in self.ops if op.node is not None)

    def append(self, op: NarrowOp) -> None:
        self.ops.append(op)
        if op.propagate_schema.__func__ is NarrowOp.propagate_schema:  # type: ignore[attr-defined]
            self.schema_mode = "sampled"

    def label(self) -> str:
        return " | ".join(op.describe() for op in self.ops)


class WideStage(Stage):
    """A materialisation point: shuffle, global order, or multi-input merge."""

    kind = "wide"

    def __init__(self, node: PlanNode):
        super().__init__()
        self.node = node
        self.kind = node.op_type

    @property
    def output_oid(self) -> int:
        return self.node.oid

    def input_oids(self) -> tuple[int, ...]:
        return tuple(child.oid for child in self.node.children)

    def logical_oids(self) -> tuple[int, ...]:
        return (self.node.oid,)

    def label(self) -> str:
        return self.node.label()


class PhysicalPlan:
    """Ordered stages plus the (possibly rewritten) logical plan they realise."""

    def __init__(
        self,
        logical_root: PlanNode,
        executed_root: PlanNode,
        stages: list[Stage],
        report: "Any",
    ):
        self.logical_root = logical_root
        self.executed_root = executed_root
        self.stages = stages
        #: The :class:`~repro.engine.optimizer.OptimizationReport` of rewrites.
        self.report = report

    @property
    def root_oid(self) -> int:
        return self.executed_root.oid

    def describe(self) -> str:
        """Render the stages (the physical half of ``repro explain``)."""
        lines: list[str] = []
        for index, stage in enumerate(self.stages):
            attrs = (
                "<" + ", ".join(stage.static_attrs) + ">"
                if stage.static_attrs is not None
                else "inferred at runtime (SCHEMA_SAMPLE)"
            )
            lines.append(f"stage {index} [{stage.kind}] {stage.label()}")
            lines.append(f"    schema: {attrs} ({stage.schema_mode})")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"PhysicalPlan({len(self.stages)} stages, root oid {self.root_oid})"


# ---------------------------------------------------------------------------
# Stage compilation
# ---------------------------------------------------------------------------


def _consumer_counts(root: PlanNode) -> dict[int, int]:
    counts: dict[int, int] = {}
    for node in root.walk():
        for child in node.children:
            counts[child.oid] = counts.get(child.oid, 0) + 1
    return counts


def compile_stages(
    logical_root: PlanNode,
    executed_root: PlanNode,
    *,
    fuse: bool,
    prune_sets: dict[int, frozenset[str]] | None = None,
    limit_prefix: bool = False,
    report: Any = None,
) -> PhysicalPlan:
    """Compile the (rewritten) logical plan into an ordered stage list.

    ``fuse=False`` gives every narrow operator its own single-op stage --
    the un-optimized layout whose execution is step-for-step the seed path.
    ``prune_sets`` maps a node oid to the attribute set that must survive
    its output; a :class:`PruneOp` is inserted at the head of any fused
    chain reading such a node.  Chains are only extended across edges whose
    producer has exactly one consumer, so shared sub-plans stay materialised
    and memoised exactly like the seed's ``_memo``.
    """
    consumers = _consumer_counts(executed_root)
    prune_sets = prune_sets or {}
    stages: list[Stage] = []
    stage_of: dict[int, Stage] = {}

    def start_chain(child: PlanNode, first: NarrowOp) -> FusedStage:
        ops: list[NarrowOp] = []
        keep = prune_sets.get(child.oid)
        # A select rebuilds its items from scratch and only evaluates the
        # paths it projects; pruning in front of it adds a copy pass for no
        # saving, so the prune is only inserted ahead of copying operators
        # (filter chains, flattens, with_column).
        if keep is not None and isinstance(first, SelectOp):
            keep = None
        if keep is not None:
            ops.append(PruneOp(keep))
            if report is not None:
                report.add(
                    "prune",
                    f"prune input of oid {first.node.oid} to [{', '.join(sorted(keep))}]",
                )
        stage = FusedStage(child.oid, ops)
        stage.append(first)
        stages.append(stage)
        return stage

    for node in executed_root.walk():
        if isinstance(node, ReadNode):
            stage: Stage = ReadStage(node)
            stages.append(stage)
        elif isinstance(node, NARROW_NODE_TYPES):
            child = node.children[0]
            op = narrow_op_for(node)
            child_stage = stage_of[child.oid]
            if (
                fuse
                and isinstance(child_stage, FusedStage)
                and consumers.get(child.oid, 0) == 1
            ):
                child_stage.append(op)
                stage = child_stage
                if report is not None and len(stage.logical_oids()) == 2:
                    report.add("fuse", f"fuse chain starting at oid {stage.logical_oids()[0]}")
            else:
                stage = start_chain(child, op)
        else:
            if (
                limit_prefix
                and isinstance(node, LimitNode)
                and isinstance(stage_of.get(node.children[0].oid), FusedStage)
                and consumers.get(node.children[0].oid, 0) == 1
            ):
                upstream = stage_of[node.children[0].oid]
                assert isinstance(upstream, FusedStage)
                upstream.append(LimitPrefixOp(node.n))
                if report is not None:
                    report.add(
                        "fuse", f"push per-partition prefix of limit {node.n} into stage"
                    )
            stage = WideStage(node)
            stages.append(stage)
        stage_of[node.oid] = stage

    _propagate_static_attrs(stages, stage_of)
    plan = PhysicalPlan(logical_root, executed_root, stages, report)
    return plan


def _propagate_static_attrs(stages: list[Stage], stage_of: dict[int, Stage]) -> None:
    """Compile-time attribute-level schema propagation across stages."""
    attrs_of: dict[int, tuple[str, ...] | None] = {}
    for stage in stages:
        if isinstance(stage, ReadStage):
            out: tuple[str, ...] | None = None  # source shape is data-dependent
        elif isinstance(stage, FusedStage):
            out = attrs_of.get(stage.input_oid)
            for op in stage.ops:
                out = op.static_attributes(out)
        else:
            assert isinstance(stage, WideStage)
            out = _wide_static_attrs(stage.node, attrs_of)
        stage.static_attrs = out
        attrs_of[stage.output_oid] = out


def _wide_static_attrs(
    node: PlanNode, attrs_of: dict[int, tuple[str, ...] | None]
) -> tuple[str, ...] | None:
    child_attrs = [attrs_of.get(child.oid) for child in node.children]
    if isinstance(node, (DistinctNode, SortNode, LimitNode)):
        return child_attrs[0]
    if isinstance(node, AggregateNode):
        return node.key_names + tuple(agg.output_name() for agg in node.aggregates)
    if isinstance(node, UnionNode):
        left, right = child_attrs
        if left is None or right is None:
            return None
        return left + tuple(name for name in right if name not in left)
    if isinstance(node, JoinNode):
        left, right = child_attrs
        if left is None or right is None:
            return None
        return left + right
    return None


# ---------------------------------------------------------------------------
# Stage tasks: the picklable unit of scheduled work
# ---------------------------------------------------------------------------


class StageTaskResult:
    """What one executed :class:`StageTask` hands back to the driver.

    Plain picklable data: the partition's output items (a ``list[DataItem]``
    or, under the columnar layout, a :class:`ColumnarPartition` of raw column
    buffers), the per-operator trace entries / cardinalities / schema samples
    the driver's finalisation pass needs, per-operator kernel-vs-fallback
    flags, and -- when the task ran traced in a pool worker -- the spans
    recorded there, for merging into the parent trace.
    """

    __slots__ = (
        "items",
        "entries",
        "counts",
        "samples",
        "spans",
        "part",
        "attempt",
        "kernels",
    )

    def __init__(
        self,
        items: "list[DataItem] | ColumnarPartition",
        entries: list[Any],
        counts: list[tuple[int, int]],
        samples: "list[list[DataItem] | ColumnarPartition | None]",
        spans: tuple[Any, ...],
        part: int,
        attempt: int,
        kernels: tuple[bool, ...] = (),
    ):
        self.items = items
        self.entries = entries
        self.counts = counts
        self.samples = samples
        self.spans = spans
        self.part = part
        self.attempt = attempt
        #: Per registered operator: True when the batch kernel ran, False on
        #: row fallback; empty under the rows layout.
        self.kernels = kernels

    def __repr__(self) -> str:
        return (
            f"StageTaskResult(p{self.part}, {len(self.items)} items, "
            f"attempt {self.attempt})"
        )


class StageTask:
    """A picklable descriptor of one partition's slice of a fused segment.

    The fused-stage executor used to build closures over its local state;
    closures don't pickle, which ruled out process pools and made tasks
    non-restartable.  A ``StageTask`` instead carries plain data -- the
    segment's operator chain, the partition's items, the capture-hook spec,
    the tracing linkage, and the fault-injection plan -- and ``__call__`` is
    the module-level-importable entrypoint every scheduler backend runs.

    Tasks are **pure**: they read only their own fields and return a fresh
    :class:`StageTaskResult`, so a retried task recomputes the identical
    value and the engine's output is attempt-count independent.

    ``attempt`` is the one mutable field; the scheduler's retry layer bumps
    it before each submission (a process pool re-pickles the task per
    submit, so workers observe the current value).
    """

    __slots__ = (
        "key",
        "ops",
        "sampling",
        "items",
        "capturing",
        "stage_label",
        "part",
        "trace_epoch",
        "origin_pid",
        "fault_plan",
        "attempt",
    )

    def __init__(
        self,
        *,
        key: str,
        ops: tuple[NarrowOp, ...],
        sampling: tuple[bool, ...],
        items: "list[DataItem] | ColumnarPartition",
        capturing: bool,
        stage_label: str,
        part: int,
        trace_epoch: float | None = None,
        origin_pid: int | None = None,
        fault_plan: "FaultPlan | None" = None,
    ):
        self.key = key
        self.ops = ops
        self.sampling = sampling
        self.items = items
        self.capturing = capturing
        self.stage_label = stage_label
        self.part = part
        #: Parent tracer epoch; workers align their local clock to it so
        #: merged spans land on the parent timeline (``perf_counter`` is
        #: CLOCK_MONOTONIC, shared system-wide on Linux).
        self.trace_epoch = trace_epoch
        self.origin_pid = origin_pid
        self.fault_plan = fault_plan
        self.attempt = 1

    def _tracer(self, in_worker: bool):
        from repro.obs.tracer import NULL_TRACER, Tracer, get_tracer

        if not in_worker:
            return get_tracer()
        if self.trace_epoch is None:
            return NULL_TRACER
        # A forked worker inherits the parent's (driver-owned, non-IPC-safe)
        # tracer object; record into a fresh local one and ship the spans.
        return Tracer("repro-worker", epoch=self.trace_epoch)

    def __call__(self) -> StageTaskResult:
        import os

        if self.fault_plan is not None:
            self.fault_plan.apply(self.key, self.attempt)
        in_worker = self.origin_pid is not None and os.getpid() != self.origin_pid
        tracer = self._tracer(in_worker)
        columnar = isinstance(self.items, ColumnarPartition)
        items: Any = self.items if columnar else list(self.items)
        entries_out: list[Any] = []
        counts_out: list[tuple[int, int]] = []
        samples_out: list[list[DataItem] | None] = []
        kernels_out: list[bool] = []
        with tracer.span(
            f"task p{self.part}",
            "task",
            stage=self.stage_label,
            rows=len(items),
            attempt=self.attempt,
        ):
            for op, sampled in zip(self.ops, self.sampling):
                traced = self.capturing and op.registers
                if columnar:
                    out, entries, kernel = op.apply_batch(items, traced)
                    kernels_out.append(kernel)
                    # Columnar samples stay columnar: a prefix slice ships as
                    # raw buffers (or as a reference to the result partition
                    # itself when it is small) and the driver infers the
                    # schema column-wise -- no worker-side decode, no
                    # object-graph pickling for schema sampling.
                    sample = out.slice(SCHEMA_SAMPLE) if sampled else None
                else:
                    out, entries = op.apply(items, traced)
                    sample = out[:SCHEMA_SAMPLE] if sampled else None
                entries_out.append(entries)
                counts_out.append((len(items), len(out)))
                samples_out.append(sample)
                items = out
        spans: tuple[Any, ...] = ()
        if in_worker and tracer.enabled:
            worker_spans = tracer.spans()
            # One export track per worker process: thread idents collide
            # across forked processes, pids do not.
            for span in worker_spans:
                span.tid = os.getpid()
                span.args.setdefault("pid", os.getpid())
            spans = tuple(worker_spans)
        return StageTaskResult(
            items,
            entries_out,
            counts_out,
            samples_out,
            spans,
            self.part,
            self.attempt,
            tuple(kernels_out),
        )

    def __repr__(self) -> str:
        chain = " | ".join(op.describe() for op in self.ops)
        return f"StageTask({self.key}: {chain}, {len(self.items)} items)"
