"""Spark-like partitioned dataflow engine substrate (paper Sec. 4.2).

The engine is layered: a logical plan (``plan.py``) is rewritten by the
optimizer (``optimizer.py``), compiled into a physical plan of fused stages
(``physical.py``), and executed by the driver (``executor.py``) through a
pluggable scheduler (``scheduler.py``), with provenance capture attached as
hooks (``hooks.py``) and everything configured by one
:class:`~repro.engine.config.EngineConfig`.
"""

from repro.engine.config import EngineConfig
from repro.engine.dataset import Dataset, GroupedDataset
from repro.engine.executor import ExecutionResult, Executor
from repro.engine.hooks import (
    CaptureHook,
    LineageCaptureHook,
    MetricsHook,
    StructuralCaptureHook,
)
from repro.engine.optimizer import OptimizationReport, plan_physical
from repro.engine.physical import PhysicalPlan
from repro.engine.scheduler import Scheduler, SerialScheduler, ThreadPoolScheduler
from repro.engine.expressions import (
    AggregateExpr,
    Expression,
    avg,
    coalesce,
    col,
    collect_list,
    collect_set,
    count,
    lit,
    max_,
    min_,
    struct_,
    sum_,
)
from repro.engine.session import Session
from repro.engine.storage import InMemorySource, JsonlSource, Source

__all__ = [
    "Dataset",
    "GroupedDataset",
    "EngineConfig",
    "ExecutionResult",
    "Executor",
    "CaptureHook",
    "StructuralCaptureHook",
    "LineageCaptureHook",
    "MetricsHook",
    "OptimizationReport",
    "PhysicalPlan",
    "plan_physical",
    "Scheduler",
    "SerialScheduler",
    "ThreadPoolScheduler",
    "AggregateExpr",
    "Expression",
    "avg",
    "coalesce",
    "col",
    "collect_list",
    "collect_set",
    "count",
    "lit",
    "max_",
    "min_",
    "struct_",
    "sum_",
    "Session",
    "InMemorySource",
    "JsonlSource",
    "Source",
]
