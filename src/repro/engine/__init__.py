"""Spark-like partitioned dataflow engine substrate (paper Sec. 4.2)."""

from repro.engine.dataset import Dataset, GroupedDataset
from repro.engine.executor import ExecutionResult, Executor
from repro.engine.expressions import (
    AggregateExpr,
    Expression,
    avg,
    coalesce,
    col,
    collect_list,
    collect_set,
    count,
    lit,
    max_,
    min_,
    struct_,
    sum_,
)
from repro.engine.session import Session
from repro.engine.storage import InMemorySource, JsonlSource, Source

__all__ = [
    "Dataset",
    "GroupedDataset",
    "ExecutionResult",
    "Executor",
    "AggregateExpr",
    "Expression",
    "avg",
    "coalesce",
    "col",
    "collect_list",
    "collect_set",
    "count",
    "lit",
    "max_",
    "min_",
    "struct_",
    "sum_",
    "Session",
    "InMemorySource",
    "JsonlSource",
    "Source",
]
