"""Logical plan DAG (paper Def. 4.6).

A data analytics program is a DAG of operator nodes.  Every node carries a
unique operator identifier (``oid``), its children (data-flow predecessors),
and the operator-specific parameters.  Nodes also know how to describe their
own provenance-capture metadata on a schema level (the accessed paths ``A``
and manipulation pairs ``M`` of Tab. 5); the executor combines this static
description with the per-item id associations it gathers while running.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.core.paths import POS, Path, Step, parse_path
from repro.engine.expressions import AggregateExpr, Expression, as_expression
from repro.errors import PlanError
from repro.nested.values import DataItem

__all__ = [
    "PlanNode",
    "ReadNode",
    "FilterNode",
    "SelectNode",
    "MapNode",
    "JoinNode",
    "UnionNode",
    "FlattenNode",
    "AggregateNode",
    "DistinctNode",
    "SortNode",
    "LimitNode",
    "WithColumnNode",
    "collection_element_path",
]


def collection_element_path(col_path: Path) -> Path:
    """Return the schema-level path to the *elements* of a collection path.

    ``user_mentions`` becomes ``user_mentions[pos]`` -- the paper's
    ``(a_col[pos])`` notation for the flattened elements.
    """
    if col_path.is_empty():
        raise PlanError("flatten needs a non-empty collection path")
    last = col_path.last()
    if last.pos is not None:
        raise PlanError(f"collection path must not carry a position: {col_path}")
    return Path(col_path.parent().steps + (Step(last.name, POS),))


class PlanNode:
    """Base class of all logical operators."""

    op_type: str = "abstract"

    def __init__(self, oid: int, children: Sequence["PlanNode"]):
        self.oid = oid
        self.children: tuple[PlanNode, ...] = tuple(children)

    def label(self) -> str:
        """Human-readable operator label for metrics and reports."""
        return self.op_type

    def accessed_paths(self, input_index: int = 0) -> set[Path]:
        """Schema-level accessed paths ``A`` on the given input (Tab. 5)."""
        return set()

    def manipulation_pairs(self) -> list[tuple[Path, Path]]:
        """Schema-level manipulation pairs ``M`` (input path, output path)."""
        return []

    def walk(self) -> list["PlanNode"]:
        """Return all nodes of the sub-DAG in topological (children-first) order."""
        seen: set[int] = set()
        ordered: list[PlanNode] = []

        def visit(node: "PlanNode") -> None:
            if node.oid in seen:
                return
            seen.add(node.oid)
            for child in node.children:
                visit(child)
            ordered.append(node)

        visit(self)
        return ordered

    def __repr__(self) -> str:
        return f"{type(self).__name__}(oid={self.oid})"


class ReadNode(PlanNode):
    """A source operator: reads a named collection of data items.

    ``loader`` is a zero-argument callable producing the items, so JSONL
    files and in-memory datasets share one node type.
    """

    op_type = "read"

    def __init__(self, oid: int, name: str, loader: Callable[[], list[DataItem]]):
        super().__init__(oid, ())
        self.name = name
        self.loader = loader

    def label(self) -> str:
        return f"read {self.name}"


class FilterNode(PlanNode):
    """Keeps items whose predicate evaluates truthy (Tab. 5: M = empty set)."""

    op_type = "filter"

    def __init__(self, oid: int, child: PlanNode, predicate: Expression):
        super().__init__(oid, (child,))
        self.predicate = predicate

    def label(self) -> str:
        return f"filter {self.predicate}"

    def accessed_paths(self, input_index: int = 0) -> set[Path]:
        return {path.schematic() for path in self.predicate.accessed_paths()}


class SelectNode(PlanNode):
    """Projects each item to the given expressions (Tab. 5 select rule)."""

    op_type = "select"

    def __init__(self, oid: int, child: PlanNode, projections: Sequence[Expression]):
        if not projections:
            raise PlanError("select needs at least one projection")
        super().__init__(oid, (child,))
        self.projections: tuple[Expression, ...] = tuple(projections)
        names = [projection.output_name() for projection in self.projections]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise PlanError(f"duplicate output attributes in select: {sorted(duplicates)}")
        self.output_names: tuple[str, ...] = tuple(names)

    def label(self) -> str:
        return "select " + ", ".join(self.output_names)

    def accessed_paths(self, input_index: int = 0) -> set[Path]:
        paths: set[Path] = set()
        for projection in self.projections:
            paths |= {path.schematic() for path in projection.accessed_paths()}
        return paths

    def manipulation_pairs(self) -> list[tuple[Path, Path]]:
        pairs: list[tuple[Path, Path]] = []
        for projection, name in zip(self.projections, self.output_names):
            pairs.extend(projection.manipulation_pairs(Path().child(name)))
        return pairs


class MapNode(PlanNode):
    """Applies an arbitrary item-level function (Tab. 5: A = M = undefined)."""

    op_type = "map"

    def __init__(self, oid: int, child: PlanNode, fn: Callable[[DataItem], Any], name: str = "udf"):
        super().__init__(oid, (child,))
        self.fn = fn
        self.name = name

    def label(self) -> str:
        return f"map {self.name}"


class JoinNode(PlanNode):
    """Inner join on a boolean condition over both inputs (Tab. 5 join rule).

    The result item is the attribute concatenation ``<i, j>``; attribute
    names must therefore be disjoint across the two inputs.
    """

    op_type = "join"

    def __init__(self, oid: int, left: PlanNode, right: PlanNode, condition: Expression):
        super().__init__(oid, (left, right))
        self.condition = condition

    def label(self) -> str:
        return f"join on {self.condition}"

    def condition_paths(self) -> set[Path]:
        """All schema-level paths the condition accesses (both sides)."""
        return {path.schematic() for path in self.condition.accessed_paths()}


class UnionNode(PlanNode):
    """Bag union of two schema-compatible inputs (Tab. 5: A = M = empty)."""

    op_type = "union"

    def __init__(self, oid: int, left: PlanNode, right: PlanNode):
        super().__init__(oid, (left, right))


class FlattenNode(PlanNode):
    """Unnests a collection attribute into a new attribute (Tab. 5 flatten).

    For each element ``j`` at position ``pos`` of ``item.a_col``, emits
    ``<item, a_new: j>``.  With ``outer=True``, items whose collection is
    empty or null survive with ``a_new = None`` (SparkSQL's
    ``explode_outer``); the default drops them, like ``explode``.
    """

    op_type = "flatten"

    def __init__(
        self,
        oid: int,
        child: PlanNode,
        col_path: Path | str,
        new_name: str,
        outer: bool = False,
    ):
        super().__init__(oid, (child,))
        self.col_path = parse_path(col_path) if isinstance(col_path, str) else col_path
        if self.col_path.is_empty():
            raise PlanError("flatten needs a collection path")
        if not new_name:
            raise PlanError("flatten needs a new attribute name")
        self.new_name = new_name
        self.outer = outer
        self.element_path = collection_element_path(self.col_path)

    def label(self) -> str:
        return f"flatten {self.col_path} -> {self.new_name}"

    def accessed_paths(self, input_index: int = 0) -> set[Path]:
        return {self.element_path}

    def manipulation_pairs(self) -> list[tuple[Path, Path]]:
        return [(self.element_path, Path().child(self.new_name))]


class AggregateNode(PlanNode):
    """GroupBy plus aggregation (Tab. 5 grouping and aggregation rules).

    ``keys`` are grouping expressions; each key becomes an output attribute
    that holds the group's (unique) key value.  ``aggregates`` mix scalar
    functions (count, sum, ...) and nested collectors (collect_list,
    collect_set).  For nested collectors, the i-th input item of a group
    produced the i-th element of the output collection -- the positional
    correspondence the aggregation backtracing (Alg. 4) exploits.
    """

    op_type = "aggregate"

    def __init__(
        self,
        oid: int,
        child: PlanNode,
        keys: Sequence[Any],
        aggregates: Sequence[AggregateExpr],
    ):
        if not aggregates:
            raise PlanError("aggregation needs at least one aggregate function")
        super().__init__(oid, (child,))
        self.keys: tuple[Expression, ...] = tuple(as_expression(key) for key in keys)
        self.aggregates: tuple[AggregateExpr, ...] = tuple(aggregates)
        names = [key.output_name() for key in self.keys]
        names.extend(aggregate.output_name() for aggregate in self.aggregates)
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise PlanError(f"duplicate output attributes in aggregation: {sorted(duplicates)}")
        self.key_names: tuple[str, ...] = tuple(key.output_name() for key in self.keys)

    def label(self) -> str:
        keys = ", ".join(self.key_names)
        aggs = ", ".join(str(aggregate) for aggregate in self.aggregates)
        return f"groupBy({keys}).agg({aggs})"

    def accessed_paths(self, input_index: int = 0) -> set[Path]:
        paths: set[Path] = set()
        for key in self.keys:
            paths |= {path.schematic() for path in key.accessed_paths()}
        for aggregate in self.aggregates:
            paths |= {path.schematic() for path in aggregate.accessed_paths()}
        return paths

    def manipulation_pairs(self) -> list[tuple[Path, Path]]:
        """Map aggregated input paths to the new output attributes.

        Nested collectors map into the elements of the new collection
        (``tweet -> tweets[pos]``); scalar aggregates map to the plain output
        attribute.  Group keys pass through unchanged and are therefore
        recorded in ``A`` only (matching Fig. 2, where grouping *accesses*
        the ``user`` subtree but does not manipulate it).
        """
        pairs: list[tuple[Path, Path]] = []
        for aggregate in self.aggregates:
            out_name = aggregate.output_name()
            if aggregate.is_nested:
                out_path = Path().child(out_name, POS)
                if aggregate.column.is_projection():
                    # A struct collector maps each constituent input path to
                    # its field inside the collection's elements, a plain
                    # column collector maps the column to the element itself.
                    pairs.extend(
                        (in_path.schematic(), mapped)
                        for in_path, mapped in aggregate.column.manipulation_pairs(out_path)
                    )
                    continue
            else:
                out_path = Path().child(out_name)
            for in_path in sorted(aggregate.accessed_paths(), key=str):
                pairs.append((in_path.schematic(), out_path))
        for key, name in zip(self.keys, self.key_names):
            if not key.is_projection():
                continue
            key_pairs = key.manipulation_pairs(Path().child(name))
            for in_path, out_path in key_pairs:
                if in_path != out_path:
                    # A renaming key restructures the data; identity
                    # pass-through keys do not (access only).
                    pairs.append((in_path, out_path))
        return pairs


class DistinctNode(PlanNode):
    """Removes duplicate items (bag -> set semantics).

    Provenance-wise a distinct behaves like a grouping on the whole item:
    *every* duplicate input contributes to the surviving output item, so the
    id associations take the aggregation shape of Tab. 6, and the operator
    accesses every top-level attribute (it compares whole items).
    """

    op_type = "distinct"

    def __init__(self, oid: int, child: PlanNode):
        super().__init__(oid, (child,))

    def label(self) -> str:
        return "distinct"


class SortNode(PlanNode):
    """Globally orders items by key expressions.

    Sorting rearranges items but neither drops nor restructures them:
    ``M`` is empty and the sort keys are *accessed* -- they influence every
    result position without contributing data.
    """

    op_type = "sort"

    def __init__(
        self,
        oid: int,
        child: PlanNode,
        keys: Sequence[Any],
        descending: bool = False,
    ):
        if not keys:
            raise PlanError("sort needs at least one key expression")
        super().__init__(oid, (child,))
        self.keys: tuple[Expression, ...] = tuple(as_expression(key) for key in keys)
        self.descending = descending

    def label(self) -> str:
        direction = "desc" if self.descending else "asc"
        return f"sort {', '.join(str(key) for key in self.keys)} {direction}"

    def accessed_paths(self, input_index: int = 0) -> set[Path]:
        paths: set[Path] = set()
        for key in self.keys:
            paths |= {path.schematic() for path in key.accessed_paths()}
        return paths


class LimitNode(PlanNode):
    """Keeps the first *n* items (in the dataset's deterministic order)."""

    op_type = "limit"

    def __init__(self, oid: int, child: PlanNode, n: int):
        if n < 0:
            raise PlanError(f"limit must be non-negative, got {n}")
        super().__init__(oid, (child,))
        self.n = n

    def label(self) -> str:
        return f"limit {self.n}"


class WithColumnNode(PlanNode):
    """Adds (or replaces) one attribute computed from the item.

    All other attributes pass through untouched (like a filter's structure
    preservation); only the new attribute carries manipulation pairs, which
    map each accessed input path to it so backtracing reaches the inputs of
    the derived value.
    """

    op_type = "with_column"

    def __init__(self, oid: int, child: PlanNode, name: str, expression: Any):
        if not name:
            raise PlanError("with_column needs a non-empty attribute name")
        super().__init__(oid, (child,))
        self.name = name
        self.expression: Expression = as_expression(expression)

    def label(self) -> str:
        return f"with_column {self.name} = {self.expression}"

    def accessed_paths(self, input_index: int = 0) -> set[Path]:
        return {path.schematic() for path in self.expression.accessed_paths()}

    def manipulation_pairs(self) -> list[tuple[Path, Path]]:
        return self.expression.manipulation_pairs(Path().child(self.name))
