"""Columnar partition layout: offset-encoded nested bags (ROADMAP item 1).

The row layout processes a partition as ``list[DataItem]`` -- a forest of
small immutable objects.  That representation is what makes capture
GIL-bound and the process pool expensive: every handoff pickles (and every
worker unpickles) the whole object forest, and every operator walks it one
Python object at a time.

This module stores the same partition **by column**: one flat, typed store
per value kind plus ``array('q')`` offset/length arrays per nesting level.
Concretely a :class:`VariantColumn` holds, for N values,

* ``tags`` -- one byte per value naming its kind (missing / null / bool /
  int / float / str / struct / bag / set / fallback object),
* ``pos`` -- the value's index inside its kind's dense store,
* dense stores: ``array('q')`` ints, ``array('d')`` floats, a single
  string blob with an ``array('q')`` offset table, a nested
  :class:`StructColumn` for struct values, and a :class:`ListStore`
  (offset-encoded: ``offsets[i] .. offsets[i+1]`` delimit list *i*'s
  elements inside one flattened element column) for bags and sets.

A :class:`StructColumn` dictionary-encodes the attribute *shapes* (ordered
attribute-name tuples) and keeps one full-length :class:`VariantColumn` per
attribute name, so projections, prunes, and flatten kernels are column
surgery instead of per-item rebuilds.  Decoding reconstructs byte-identical
model values (``DataItem``/``Bag``/``NestedSet`` are rebuilt through their
``__new__`` fast path -- the values inside a column are already coerced).

Everything in a :class:`ColumnarPartition` pickles as a handful of array
buffers and strings, which is what removes the process-pool serialization
tax: a ``StageTask`` ships column buffers, not object graphs.
"""

from __future__ import annotations

from array import array
from typing import Any, Iterable, Iterator, Sequence

from repro.nested.types import (
    BOOLEAN,
    DOUBLE,
    INT,
    NULL,
    STRING,
    BagType,
    DataType,
    SetType,
    StructType,
    infer_type,
    unify,
)
from repro.nested.values import Bag, DataItem, NestedSet, coerce_value

__all__ = [
    "ColumnarPartition",
    "ColumnarRows",
    "VariantColumn",
    "StructColumn",
    "ListStore",
    "StrStore",
    "evaluate_batch",
    "column_for_values",
    "null_column",
    "candidate_indices",
    "match_columnar",
    "struct_type_over",
    "TAG_MISSING",
    "TAG_NONE",
    "TAG_FALSE",
    "TAG_TRUE",
    "TAG_INT",
    "TAG_FLOAT",
    "TAG_STR",
    "TAG_ITEM",
    "TAG_BAG",
    "TAG_SET",
    "TAG_OBJ",
]

# Value-kind tags (one byte per value in VariantColumn.tags).
TAG_MISSING = 0  # attribute absent from this row's item
TAG_NONE = 1
TAG_FALSE = 2
TAG_TRUE = 3
TAG_INT = 4
TAG_FLOAT = 5
TAG_STR = 6
TAG_ITEM = 7
TAG_BAG = 8
TAG_SET = 9
TAG_OBJ = 10  # fallback store (e.g. ints beyond 64 bits)

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1

#: Marker object distinguishing "attribute missing" from an explicit None.
MISSING = object()


def _new_item(pairs: tuple[tuple[str, Any], ...]) -> DataItem:
    """Rebuild a DataItem from already-coerced pairs (no validation pass)."""
    item = DataItem.__new__(DataItem)
    item._pairs = pairs
    item._index = {name: position for position, (name, _) in enumerate(pairs)}
    item._hash = None
    return item


def _new_collection(cls: type, elements: tuple[Any, ...]):
    """Rebuild a Bag/NestedSet from already-coerced elements."""
    collection = cls.__new__(cls)
    collection._items = elements
    collection._hash = None
    return collection


class StrStore:
    """Flat string storage: one blob plus an offset table.

    Strings concatenate into a single ``str`` so pickling moves one buffer;
    ``offsets`` has length ``count + 1`` and string *i* is
    ``blob[offsets[i]:offsets[i+1]]``.
    """

    __slots__ = ("_parts", "blob", "offsets")

    def __init__(self) -> None:
        self._parts: list[str] | None = []
        self.blob = ""
        self.offsets = array("q", [0])

    def append(self, value: str) -> None:
        assert self._parts is not None
        self._parts.append(value)
        self.offsets.append(self.offsets[-1] + len(value))

    def seal(self) -> None:
        """Join the staged parts into the final blob (encode epilogue)."""
        if self._parts is not None:
            self.blob = "".join(self._parts)
            self._parts = None

    def get(self, index: int) -> str:
        if self._parts is not None:
            return self._parts[index]
        return self.blob[self.offsets[index] : self.offsets[index + 1]]

    def __len__(self) -> int:
        return len(self.offsets) - 1

    def nbytes(self) -> int:
        return len(self.blob) + len(self.offsets) * 8

    def __getstate__(self):
        self.seal()
        return (self.blob, self.offsets)

    def __setstate__(self, state) -> None:
        self.blob, self.offsets = state
        self._parts = None


class ListStore:
    """Offset-encoded nested collections: one flattened element column.

    Collection *i* (a bag or set, by ``kinds[i]``) holds the elements
    ``elements[offsets[i] : offsets[i+1]]`` -- the paper-style nested bag
    laid out as one value column per nesting level.
    """

    __slots__ = ("offsets", "kinds", "elements")

    def __init__(self) -> None:
        #: offsets[i]..offsets[i+1] delimit collection i in ``elements``.
        self.offsets = array("q", [0])
        #: 0 = Bag, 1 = NestedSet, per collection.
        self.kinds = array("b")
        self.elements = VariantColumn()

    def append(self, value: Bag | NestedSet) -> None:
        for element in value.items():
            self.elements.append(element)
        self.offsets.append(len(self.elements))
        self.kinds.append(1 if isinstance(value, NestedSet) else 0)

    def get(self, index: int) -> Bag | NestedSet:
        start, stop = self.offsets[index], self.offsets[index + 1]
        elements = tuple(self.elements.get(i) for i in range(start, stop))
        return _new_collection(NestedSet if self.kinds[index] else Bag, elements)

    def length_of(self, index: int) -> int:
        return self.offsets[index + 1] - self.offsets[index]

    def element_range(self, index: int) -> range:
        return range(self.offsets[index], self.offsets[index + 1])

    def take(self, indices: Sequence[int]) -> "ListStore":
        out = ListStore()
        element_indices: list[int] = []
        total = 0
        for index in indices:
            start, stop = self.offsets[index], self.offsets[index + 1]
            element_indices.extend(range(start, stop))
            total += stop - start
            out.offsets.append(total)
            out.kinds.append(self.kinds[index])
        out.elements = self.elements.take(element_indices)
        return out

    def __len__(self) -> int:
        return len(self.kinds)

    def nbytes(self) -> int:
        return len(self.offsets) * 8 + len(self.kinds) + self.elements.nbytes()

    def seal(self) -> None:
        self.elements.seal()


class VariantColumn:
    """N values of mixed kinds: a tag byte + dense per-kind stores."""

    __slots__ = ("tags", "pos", "ints", "floats", "strs", "items", "lists", "objs")

    def __init__(self) -> None:
        self.tags = array("b")
        #: Index of each value inside its kind's dense store (0 for kinds
        #: without a store: missing / null / booleans).
        self.pos = array("q")
        self.ints = array("q")
        self.floats = array("d")
        self.strs = StrStore()
        self.items: StructColumn | None = None
        self.lists: ListStore | None = None
        self.objs: list[Any] = []

    def __len__(self) -> int:
        return len(self.tags)

    # -- encode -------------------------------------------------------------

    def append(self, value: Any) -> None:
        if value is MISSING:
            self.tags.append(TAG_MISSING)
            self.pos.append(0)
        elif value is None:
            self.tags.append(TAG_NONE)
            self.pos.append(0)
        elif value is True:
            self.tags.append(TAG_TRUE)
            self.pos.append(0)
        elif value is False:
            self.tags.append(TAG_FALSE)
            self.pos.append(0)
        elif type(value) is int:
            if _INT64_MIN <= value <= _INT64_MAX:
                self.tags.append(TAG_INT)
                self.pos.append(len(self.ints))
                self.ints.append(value)
            else:
                self.tags.append(TAG_OBJ)
                self.pos.append(len(self.objs))
                self.objs.append(value)
        elif type(value) is float:
            self.tags.append(TAG_FLOAT)
            self.pos.append(len(self.floats))
            self.floats.append(value)
        elif type(value) is str:
            self.tags.append(TAG_STR)
            self.pos.append(len(self.strs))
            self.strs.append(value)
        elif isinstance(value, DataItem):
            if self.items is None:
                self.items = StructColumn()
            self.tags.append(TAG_ITEM)
            self.pos.append(len(self.items))
            self.items.append(value)
        elif isinstance(value, (Bag, NestedSet)):
            if self.lists is None:
                self.lists = ListStore()
            self.tags.append(TAG_BAG if isinstance(value, Bag) else TAG_SET)
            self.pos.append(len(self.lists))
            self.lists.append(value)
        elif isinstance(value, bool):  # bool subclass guard (rare)
            self.tags.append(TAG_TRUE if value else TAG_FALSE)
            self.pos.append(0)
        elif isinstance(value, int):  # int subclasses
            self.tags.append(TAG_OBJ)
            self.pos.append(len(self.objs))
            self.objs.append(value)
        elif isinstance(value, float):
            self.tags.append(TAG_FLOAT)
            self.pos.append(len(self.floats))
            self.floats.append(value)
        elif isinstance(value, str):
            self.tags.append(TAG_STR)
            self.pos.append(len(self.strs))
            self.strs.append(value)
        else:
            self.tags.append(TAG_OBJ)
            self.pos.append(len(self.objs))
            self.objs.append(value)

    # -- decode -------------------------------------------------------------

    def get(self, index: int) -> Any:
        """Decode value *index* back into the nested data model.

        Raises ``LookupError`` for a MISSING slot (callers use
        :meth:`get_or_missing` when absence is expected).
        """
        value = self.get_or_missing(index)
        if value is MISSING:
            raise LookupError(f"value {index} is missing")
        return value

    def get_or_missing(self, index: int) -> Any:
        tag = self.tags[index]
        if tag == TAG_MISSING:
            return MISSING
        if tag == TAG_NONE:
            return None
        if tag == TAG_TRUE:
            return True
        if tag == TAG_FALSE:
            return False
        pos = self.pos[index]
        if tag == TAG_INT:
            return self.ints[pos]
        if tag == TAG_FLOAT:
            return self.floats[pos]
        if tag == TAG_STR:
            return self.strs.get(pos)
        if tag == TAG_ITEM:
            assert self.items is not None
            return self.items.get(pos)
        if tag == TAG_BAG or tag == TAG_SET:
            assert self.lists is not None
            return self.lists.get(pos)
        return self.objs[pos]

    # -- column surgery ------------------------------------------------------

    def take(self, indices: Sequence[int]) -> "VariantColumn":
        """Gather rows *indices* (with repetition) into a new column.

        A negative index encodes an explicit null in the output -- the
        flatten kernel uses it for ``outer`` rows whose collection is empty.
        """
        out = VariantColumn()
        item_rows: list[int] = []
        list_rows: list[int] = []
        tags = self.tags
        pos = self.pos
        for index in indices:
            if index < 0:
                out.tags.append(TAG_NONE)
                out.pos.append(0)
                continue
            tag = tags[index]
            out.tags.append(tag)
            if tag <= TAG_TRUE:  # missing/null/bool: no store
                out.pos.append(0)
            elif tag == TAG_INT:
                out.pos.append(len(out.ints))
                out.ints.append(self.ints[pos[index]])
            elif tag == TAG_FLOAT:
                out.pos.append(len(out.floats))
                out.floats.append(self.floats[pos[index]])
            elif tag == TAG_STR:
                out.pos.append(len(out.strs))
                out.strs.append(self.strs.get(pos[index]))
            elif tag == TAG_ITEM:
                out.pos.append(len(item_rows))
                item_rows.append(pos[index])
            elif tag == TAG_BAG or tag == TAG_SET:
                out.pos.append(len(list_rows))
                list_rows.append(pos[index])
            else:
                out.pos.append(len(out.objs))
                out.objs.append(self.objs[pos[index]])
        if item_rows:
            assert self.items is not None
            out.items = self.items.take(item_rows)
        if list_rows:
            assert self.lists is not None
            out.lists = self.lists.take(list_rows)
        return out

    def take_shared(self, indices: Sequence[int]) -> "VariantColumn":
        """Gather rows *indices* sharing the dense stores by reference.

        Only ``tags``/``pos`` are materialised; ints, floats, strings, nested
        structs and collections stay references to this column's (sealed,
        immutable) stores.  That makes an expanding gather -- the flatten
        kernel repeats each input row once per collection element -- O(rows)
        integer work with zero value copying, at the price of retaining the
        full input stores.  Negative indices encode explicit nulls, as in
        :meth:`take`.
        """
        tags = self.tags
        pos = self.pos
        out = VariantColumn()
        out_tags = out.tags
        out_pos = out.pos
        for index in indices:
            if index < 0:
                out_tags.append(TAG_NONE)
                out_pos.append(0)
            else:
                out_tags.append(tags[index])
                out_pos.append(pos[index])
        out.ints = self.ints
        out.floats = self.floats
        out.strs = self.strs
        out.items = self.items
        out.lists = self.lists
        out.objs = self.objs
        return out

    def raw_values(self) -> list[Any]:
        """Decode every value (MISSING slots decode to ``MISSING``)."""
        return [self.get_or_missing(index) for index in range(len(self.tags))]

    def without_missing(self) -> "VariantColumn":
        """A view with MISSING slots read as explicit nulls (shares stores).

        Projection semantics: ``col("absent")`` evaluates to ``None``, so a
        column lifted out of a struct into a select/with_column output must
        surface its holes as nulls.
        """
        if TAG_MISSING not in self.tags:
            return self
        out = VariantColumn()
        out.tags = array(
            "b", (TAG_NONE if tag == TAG_MISSING else tag for tag in self.tags)
        )
        out.pos = self.pos
        out.ints = self.ints
        out.floats = self.floats
        out.strs = self.strs
        out.items = self.items
        out.lists = self.lists
        out.objs = self.objs
        return out

    def nbytes(self) -> int:
        total = len(self.tags) + len(self.pos) * 8 + len(self.ints) * 8
        total += len(self.floats) * 8 + self.strs.nbytes()
        if self.items is not None:
            total += self.items.nbytes()
        if self.lists is not None:
            total += self.lists.nbytes()
        total += 64 * len(self.objs)  # rough fallback estimate
        return total

    def seal(self) -> None:
        self.strs.seal()
        if self.items is not None:
            self.items.seal()
        if self.lists is not None:
            self.lists.seal()


class StructColumn:
    """N struct values: dictionary-encoded shapes + one column per attribute.

    ``shapes`` holds the distinct ordered attribute-name tuples; ``shape_ids``
    names each row's shape (attribute *order* matters for item equality).
    ``columns[name]`` is a full-length :class:`VariantColumn` whose rows
    outside the attribute's shapes are tagged MISSING.
    """

    __slots__ = ("shapes", "shape_ids", "columns", "_shape_index")

    def __init__(self) -> None:
        self.shapes: list[tuple[str, ...]] = []
        self.shape_ids = array("q")
        self.columns: dict[str, VariantColumn] = {}
        self._shape_index: dict[tuple[str, ...], int] | None = {}

    def __len__(self) -> int:
        return len(self.shape_ids)

    def append(self, item: DataItem) -> None:
        if self._shape_index is None:  # after unpickle: rebuild lazily
            self._shape_index = {shape: sid for sid, shape in enumerate(self.shapes)}
        row = len(self.shape_ids)
        pairs = item.pairs()
        shape = tuple(name for name, _ in pairs)
        shape_id = self._shape_index.get(shape)
        if shape_id is None:
            shape_id = len(self.shapes)
            self.shapes.append(shape)
            self._shape_index[shape] = shape_id
        self.shape_ids.append(shape_id)
        for name, value in pairs:
            column = self.columns.get(name)
            if column is None:
                column = VariantColumn()
                for _ in range(row):  # backfill rows before first occurrence
                    column.tags.append(TAG_MISSING)
                    column.pos.append(0)
                self.columns[name] = column
            column.append(value)
        for name, column in self.columns.items():
            if len(column) == row:  # attribute absent from this item
                column.tags.append(TAG_MISSING)
                column.pos.append(0)

    def get(self, index: int) -> DataItem:
        shape = self.shapes[self.shape_ids[index]]
        columns = self.columns
        return _new_item(tuple((name, columns[name].get(index)) for name in shape))

    def take(self, indices: Sequence[int]) -> "StructColumn":
        out = StructColumn()
        out.shapes = list(self.shapes)
        out._shape_index = None
        shape_ids = self.shape_ids
        out.shape_ids = array("q", (shape_ids[index] for index in indices))
        out.columns = {
            name: column.take(indices) for name, column in self.columns.items()
        }
        return out

    def take_shared(self, indices: Sequence[int]) -> "StructColumn":
        """Gather struct rows sharing every attribute's dense stores.

        The flatten kernel's row expansion repeats whole items; per-value
        copies there dominated serial columnar runtime, so the gather only
        materialises ``shape_ids`` and each column's tag/pos arrays (see
        :meth:`VariantColumn.take_shared`).
        """
        out = StructColumn()
        out.shapes = list(self.shapes)
        out._shape_index = None
        shape_ids = self.shape_ids
        out.shape_ids = array("q", (shape_ids[index] for index in indices))
        out.columns = {
            name: column.take_shared(indices)
            for name, column in self.columns.items()
        }
        return out

    # -- kernel surgery ------------------------------------------------------

    def attribute(self, name: str) -> VariantColumn | None:
        return self.columns.get(name)

    def project(self, names: tuple[str, ...]) -> "StructColumn":
        """Keep only *names* (in shape order), like ``DataItem.project``...

        except attributes listed but absent from a row stay absent (callers
        guarantee presence; PruneOp keeps surviving attributes only).
        """
        out = StructColumn()
        out.columns = {
            name: self.columns[name] for name in names if name in self.columns
        }
        remap: dict[int, int] = {}
        shape_index: dict[tuple[str, ...], int] = {}
        kept = set(out.columns)
        for sid, shape in enumerate(self.shapes):
            new_shape = tuple(name for name in shape if name in kept)
            new_sid = shape_index.get(new_shape)
            if new_sid is None:
                new_sid = len(out.shapes)
                out.shapes.append(new_shape)
                shape_index[new_shape] = new_sid
            remap[sid] = new_sid
        out._shape_index = shape_index
        out.shape_ids = array("q", (remap[sid] for sid in self.shape_ids))
        return out

    @classmethod
    def uniform(cls, names: tuple[str, ...], columns: Sequence[VariantColumn]) -> "StructColumn":
        """Build a struct where every row has the same shape (select output)."""
        out = cls()
        count = len(columns[0]) if columns else 0
        out.shapes = [tuple(names)]
        out._shape_index = {tuple(names): 0}
        out.shape_ids = array("q", bytes(8 * count))  # all zeros
        out.columns = dict(zip(names, columns))
        return out

    def with_attribute(self, name: str, column: VariantColumn) -> "StructColumn":
        """Replace-or-append attribute *name* (``DataItem.replace`` semantics):

        rows already carrying the attribute keep its position; rows without
        it append the attribute at the end of their shape.  *column* must be
        full-length with no MISSING rows.
        """
        out = StructColumn()
        out.columns = dict(self.columns)
        out.columns[name] = column
        remap: dict[int, int] = {}
        shape_index: dict[tuple[str, ...], int] = {}
        for sid, shape in enumerate(self.shapes):
            new_shape = shape if name in shape else shape + (name,)
            new_sid = shape_index.get(new_shape)
            if new_sid is None:
                new_sid = len(out.shapes)
                out.shapes.append(new_shape)
                shape_index[new_shape] = new_sid
            remap[sid] = new_sid
        out._shape_index = shape_index
        out.shape_ids = array("q", (remap[sid] for sid in self.shape_ids))
        return out

    def nbytes(self) -> int:
        total = len(self.shape_ids) * 8
        total += sum(column.nbytes() for column in self.columns.values())
        total += sum(len(name) for name in self.columns)
        return total

    def seal(self) -> None:
        for column in self.columns.values():
            column.seal()

    def __getstate__(self):
        self.seal()
        return (self.shapes, self.shape_ids, self.columns)

    def __setstate__(self, state) -> None:
        self.shapes, self.shape_ids, self.columns = state
        self._shape_index = None


def _variant_type_over(column: VariantColumn, indices: Sequence[int]) -> DataType:
    """Unified nested type of the given value rows, computed column-wise.

    Equivalent to ``unify_all(infer_type(column.get(i)) for i in indices)``
    (with MISSING rows contributing ``Null``) but without materialising any
    model value: one pass groups the rows by kind, nested structs and
    collections recurse over index lists into their dense stores.  ``unify``
    is associative and commutative for every successful fold -- only struct
    *field order* is order-sensitive, and struct rows form a single group
    folded in row order -- so grouping by kind preserves the row-fold result.
    """
    tags = column.tags
    pos = column.pos
    order: list[int] = []
    seen = 0  # bitmask of kind groups already ordered
    item_rows: list[int] = []
    bag_rows: list[int] = []
    set_rows: list[int] = []
    obj_rows: list[int] = []
    for index in indices:
        tag = tags[index]
        if tag == TAG_MISSING or tag == TAG_NONE:
            continue
        if tag == TAG_FALSE:
            tag = TAG_TRUE  # booleans are one group
        elif tag == TAG_ITEM:
            item_rows.append(pos[index])
        elif tag == TAG_BAG:
            bag_rows.append(pos[index])
        elif tag == TAG_SET:
            set_rows.append(pos[index])
        elif tag == TAG_OBJ:
            obj_rows.append(pos[index])
        bit = 1 << tag
        if not seen & bit:
            seen |= bit
            order.append(tag)
    result: DataType = NULL
    for tag in order:
        if tag == TAG_TRUE:
            group: DataType = BOOLEAN
        elif tag == TAG_INT:
            group = INT
        elif tag == TAG_FLOAT:
            group = DOUBLE
        elif tag == TAG_STR:
            group = STRING
        elif tag == TAG_ITEM:
            assert column.items is not None
            group = struct_type_over(column.items, item_rows)
        elif tag == TAG_BAG or tag == TAG_SET:
            lists = column.lists
            assert lists is not None
            rows = bag_rows if tag == TAG_BAG else set_rows
            elements: list[int] = []
            for row in rows:
                elements.extend(lists.element_range(row))
            element_type = _variant_type_over(lists.elements, elements)
            group = BagType(element_type) if tag == TAG_BAG else SetType(element_type)
        else:  # TAG_OBJ: fall back to per-value inference
            group = NULL
            for row in obj_rows:
                group = unify(group, infer_type(column.objs[row]))
        result = unify(result, group)
    return result


def struct_type_over(struct: StructColumn, indices: Sequence[int]) -> StructType:
    """Unified :class:`StructType` of the given struct rows, column-wise.

    Matches ``unify_all(infer_type(struct.get(i)) for i in indices)`` exactly
    for successful folds: field-name order merges the rows' shapes in row
    order (first appearance wins, as struct unification does), and each
    field's type unifies over its full column -- rows whose shape lacks the
    field are MISSING there and contribute the neutral ``Null``.
    """
    names: list[str] = []
    known: set[str] = set()
    seen_shapes: set[int] = set()
    shape_ids = struct.shape_ids
    for index in indices:
        sid = shape_ids[index]
        if sid in seen_shapes:
            continue
        seen_shapes.add(sid)
        for name in struct.shapes[sid]:
            if name not in known:
                known.add(name)
                names.append(name)
    return StructType(
        (name, _variant_type_over(struct.columns[name], indices)) for name in names
    )


class ColumnarPartition:
    """One partition of top-level data items in columnar layout."""

    __slots__ = ("struct",)

    def __init__(self, struct: StructColumn | None = None):
        self.struct = struct if struct is not None else StructColumn()

    @classmethod
    def from_items(cls, items: Iterable[DataItem]) -> "ColumnarPartition":
        struct = StructColumn()
        for item in items:
            struct.append(item)
        struct.seal()
        return cls(struct)

    def to_items(self) -> list[DataItem]:
        struct = self.struct
        return [struct.get(index) for index in range(len(struct))]

    def iter_items(self) -> Iterator[DataItem]:
        struct = self.struct
        for index in range(len(struct)):
            yield struct.get(index)

    def head_items(self, n: int) -> list[DataItem]:
        struct = self.struct
        return [struct.get(index) for index in range(min(n, len(struct)))]

    def get(self, index: int) -> DataItem:
        return self.struct.get(index)

    def take(self, indices: Sequence[int]) -> "ColumnarPartition":
        return ColumnarPartition(self.struct.take(indices))

    def slice(self, n: int) -> "ColumnarPartition":
        if n >= len(self):
            return self
        return self.take(range(n))

    def __len__(self) -> int:
        return len(self.struct)

    def __eq__(self, other: object) -> bool:
        # Value equality over the decoded rows: pickle round-trips and
        # re-encodings compare equal even if the physical buffers differ.
        if not isinstance(other, ColumnarPartition):
            return NotImplemented
        if len(self) != len(other):
            return False
        return self.to_items() == other.to_items()

    def nbytes(self) -> int:
        """Estimated resident bytes of the column buffers."""
        return self.struct.nbytes()

    def __repr__(self) -> str:
        return f"ColumnarPartition({len(self)} rows, ~{self.nbytes()} bytes)"


class ColumnarRows:
    """Driver-side partition state: provenance ids + columnar data.

    The executor's partition map stores either plain ``list[(pid, item)]``
    rows or one of these; ``rows()`` decodes on demand (wide stages, final
    results), while fused stages and the pattern matcher consume the columns
    directly.
    """

    __slots__ = ("pids", "data")

    def __init__(self, pids: list | None, data: ColumnarPartition):
        self.pids = pids
        self.data = data

    def rows(self) -> list[tuple[Any, DataItem]]:
        items = self.data.to_items()
        if self.pids is None:
            return [(None, item) for item in items]
        return list(zip(self.pids, items))

    def iter_rows(self) -> Iterator[tuple[Any, DataItem]]:
        if self.pids is None:
            for item in self.data.iter_items():
                yield (None, item)
        else:
            yield from zip(self.pids, self.data.iter_items())

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        captured = "ids" if self.pids is not None else "plain"
        return f"ColumnarRows({len(self)} rows, {captured})"


# ---------------------------------------------------------------------------
# Batch expression evaluation
# ---------------------------------------------------------------------------
#
# Kernels evaluate engine expressions against whole columns.  The scalar
# semantics are reused verbatim -- the same operand functions run per value --
# but no DataItem is ever materialised for rows whose accessed attributes are
# constants, which is where the row layout burns its time.


def _column_values(part: ColumnarPartition, steps: tuple) -> list[Any] | None:
    """Raw values of a positionless attribute path, or None when unsupported.

    Mirrors ``ColumnExpr.evaluate`` exactly: a missing attribute, a ``None``
    along the way, and navigation into a non-struct value all yield ``None``
    (``resolves_in`` swallows the :class:`PathEvaluationError`).  Only
    positional steps are unsupported -- the caller falls back to rows.
    """
    struct: StructColumn | None = part.struct
    count = len(part)
    rows: list[int] | None = None  # None = identity mapping
    out: list[Any] = [None] * count
    pending = list(range(count))
    for depth, step in enumerate(steps):
        if step.pos is not None:
            return None  # positional access: row fallback
        if struct is None:
            return out
        column = struct.attribute(step.name)
        if column is None:
            return out  # attribute nowhere present: all None
        last = depth == len(steps) - 1
        if last:
            for out_index in pending:
                row = out_index if rows is None else rows[out_index]
                value = column.get_or_missing(row)
                out[out_index] = None if value is MISSING else value
            return out
        # Descend: only rows whose value here is a struct continue; every
        # other kind (missing, null, constant, collection) evaluates to None.
        tags = column.tags
        pos = column.pos
        next_pending: list[int] = []
        next_rows: list[int] = []
        for out_index in pending:
            row = out_index if rows is None else rows[out_index]
            if tags[row] == TAG_ITEM:
                next_pending.append(out_index)
                next_rows.append(pos[row])
        struct = column.items
        pending = next_pending
        rows = next_rows
    return out


def evaluate_batch(expression: Any, part: ColumnarPartition) -> list[Any] | None:
    """Evaluate *expression* over every row of *part*.

    Returns the value list, or ``None`` when the expression reaches outside
    the supported subset (positional paths, struct constructors, UDFs) --
    the caller then decodes and evaluates row-at-a-time.
    """
    # Imported lazily: expressions.py must not depend on the columnar layout.
    from repro.engine.expressions import (
        AliasedExpr,
        BinaryExpr,
        ColumnExpr,
        FunctionExpr,
        LiteralExpr,
        UnaryExpr,
    )

    if isinstance(expression, AliasedExpr):
        return evaluate_batch(expression.inner, part)
    if isinstance(expression, LiteralExpr):
        return [expression.value] * len(part)
    if isinstance(expression, ColumnExpr):
        return _column_values(part, tuple(expression.path.steps))
    if isinstance(expression, UnaryExpr):
        operand = evaluate_batch(expression.operand, part)
        if operand is None:
            return None
        fn = expression.fn
        return [fn(value) for value in operand]
    if isinstance(expression, BinaryExpr):
        left = evaluate_batch(expression.left, part)
        if left is None:
            return None
        right = evaluate_batch(expression.right, part)
        if right is None:
            return None
        fn = expression.fn
        return [fn(a, b) for a, b in zip(left, right)]
    if isinstance(expression, FunctionExpr):
        operands = [evaluate_batch(operand, part) for operand in expression.operands]
        if any(operand is None for operand in operands):
            return None
        fn = expression.fn
        return [fn(*values) for values in zip(*operands)] if operands else None
    return None


def column_for_values(values: Sequence[Any]) -> VariantColumn:
    """Build a full-length column from expression results.

    Values are coerced into the model first, matching what ``DataItem``'s
    constructor does to projection results in the row layout (model values
    and constants pass through untouched).
    """
    column = VariantColumn()
    for value in values:
        column.append(coerce_value(value))
    return column


def null_column(count: int) -> VariantColumn:
    """A column of *count* explicit nulls (outer-flatten over no collections)."""
    column = VariantColumn()
    column.tags = array("b", bytes([TAG_NONE])) * count
    column.pos = array("q", bytes(8)) * count
    return column


# ---------------------------------------------------------------------------
# Tree-pattern candidate pre-filtering
# ---------------------------------------------------------------------------


def candidate_indices(pattern: Any, part: ColumnarPartition) -> list[int] | None:
    """Rows of *part* that can possibly match *pattern* (a superset).

    Vectorized pre-filter for the tree-pattern matcher: only surviving rows
    are decoded into items and matched individually.  The filter is
    conservative -- it never drops a row the full matcher would accept:

    * A root-level **parent-child** node requires its attribute present at
      the item's top level (``_direct_candidates`` over a struct yields only
      the named attribute), so MISSING-tagged rows are out.  Nodes whose
      count constraint has ``low == 0`` impose no presence requirement
      (``[0,h]`` is an upper bound; ``[0,0]`` is negation) and are skipped.
    * An **equality** constraint additionally rejects rows whose top-level
      value is a *constant* of a different value: constants have no elements
      to expand and no deeper candidates, so the sole candidate fails.
      Struct/collection/fallback values always survive to the full matcher.

    Returns ``None`` when no pattern node is usable for filtering (match
    everything), or the surviving row indices otherwise.
    """
    from repro.core.treepattern.pattern import Edge, NO_EQUALS

    alive: list[int] | None = None
    for node in pattern.children:
        if node.edge != Edge.CHILD or node.name == "*":
            continue  # descendant/wildcard nodes: no cheap column test
        if node.count is not None and node.count[0] == 0:
            continue
        column = part.struct.attribute(node.name)
        if column is None:
            return []  # the attribute exists nowhere: nothing matches
        tags = column.tags
        check_equals = node.equals is not NO_EQUALS
        kept: list[int] = []
        for row in range(len(part)) if alive is None else alive:
            tag = tags[row]
            if tag == TAG_MISSING:
                continue
            if check_equals and TAG_NONE <= tag <= TAG_STR:
                if column.get_or_missing(row) != node.equals:
                    continue
            kept.append(row)
        if not kept:
            return []
        alive = kept
    return alive


def match_columnar(pattern: Any, partition: ColumnarRows) -> list:
    """Tree-pattern match one columnar partition (vectorized pre-filter).

    Candidate rows are narrowed with :func:`candidate_indices` over the raw
    columns; only survivors are decoded into items and run through the full
    per-item matcher.  Candidates come back in ascending row order, so the
    match list is identical to the row layout's ``match_rows``.
    """
    from repro.core.treepattern.matcher import PatternMatch, match_item

    part = partition.data
    candidates = candidate_indices(pattern, part)
    indices: Sequence[int] = range(len(part)) if candidates is None else candidates
    pids = partition.pids
    matches = []
    for index in indices:
        item = part.get(index)
        paths = match_item(pattern, item)
        if paths is not None:
            item_id = pids[index] if pids is not None else None
            matches.append(PatternMatch(item_id, item, paths))
    return matches
