"""Engine configuration: partitioning, scheduling, and optimizer knobs.

One :class:`EngineConfig` replaces the ``num_partitions`` defaults that were
previously duplicated across ``Session``, ``PebbleSession`` and
``CapturedExecution.load``, and adds the two knobs introduced by the
logical/physical split: which scheduler backend executes the partitions of a
fused stage, and which optimizer rules rewrite the plan before compilation.

The config is immutable; derive variants with :meth:`with_partitions` /
``dataclasses.replace``.  :meth:`from_env` builds the process-wide default
and honours environment overrides (``REPRO_SCHEDULER``, ``REPRO_OPTIMIZE``,
``REPRO_MAX_WORKERS``) so an entire test suite or benchmark run can be
switched to, say, the thread-pool scheduler without touching call sites.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

from repro.errors import ExecutionError

__all__ = [
    "EngineConfig",
    "DEFAULT_NUM_PARTITIONS",
    "ALL_RULES",
    "resolve_partitions",
]

#: The engine-wide default partition count (formerly repeated as a literal
#: in every session/executor/loader signature).
DEFAULT_NUM_PARTITIONS = 4

#: All optimizer rules, in the order the optimizer applies them.
#: ``pushdown`` moves filters below select/flatten/with_column (plain runs
#: only), ``prune`` drops attributes no downstream operator accesses, and
#: ``fuse`` pipelines consecutive narrow operators into one stage.
ALL_RULES: tuple[str, ...] = ("pushdown", "prune", "fuse")

_SCHEDULERS = ("serial", "threads")


@dataclass(frozen=True)
class EngineConfig:
    """Immutable execution configuration carried by a ``Session``."""

    num_partitions: int = DEFAULT_NUM_PARTITIONS
    #: ``"serial"`` or ``"threads"`` (thread pool over partitions).
    scheduler: str = "serial"
    #: Worker cap for the thread-pool scheduler; ``None`` sizes from the CPU.
    max_workers: int | None = None
    #: Master switch for plan rewriting; ``False`` reproduces the seed
    #: operator-at-a-time execution exactly.
    optimize: bool = True
    #: Enabled rule subset (ablations disable individual rules).
    rules: tuple[str, ...] = ALL_RULES

    def __post_init__(self) -> None:
        if self.num_partitions < 1:
            raise ExecutionError(f"need at least one partition, got {self.num_partitions}")
        if self.scheduler not in _SCHEDULERS:
            raise ExecutionError(
                f"unknown scheduler {self.scheduler!r}; pick one of {_SCHEDULERS}"
            )
        unknown = set(self.rules) - set(ALL_RULES)
        if unknown:
            raise ExecutionError(
                f"unknown optimizer rules {sorted(unknown)}; known rules are {ALL_RULES}"
            )
        if self.max_workers is not None and self.max_workers < 1:
            raise ExecutionError(f"max_workers must be positive, got {self.max_workers}")

    def rule_enabled(self, name: str) -> bool:
        """Return whether the optimizer rule *name* is active."""
        return self.optimize and name in self.rules

    def with_partitions(self, num_partitions: int | None) -> "EngineConfig":
        """Return a copy with the partition count overridden (``None`` keeps it)."""
        if num_partitions is None or num_partitions == self.num_partitions:
            return self
        return replace(self, num_partitions=num_partitions)

    @classmethod
    def from_env(cls, **overrides: object) -> "EngineConfig":
        """Build the default config, honouring environment overrides.

        Explicit *overrides* win over the environment; the environment wins
        over the built-in defaults.  Only behavioural knobs are read from the
        environment -- the partition count stays code-controlled because test
        expectations depend on it.
        """
        values: dict[str, object] = {}
        scheduler = os.environ.get("REPRO_SCHEDULER")
        if scheduler:
            values["scheduler"] = scheduler
        optimize = os.environ.get("REPRO_OPTIMIZE")
        if optimize:
            values["optimize"] = optimize.strip().lower() not in ("0", "false", "off", "no")
        max_workers = os.environ.get("REPRO_MAX_WORKERS")
        if max_workers:
            values["max_workers"] = int(max_workers)
        values.update(overrides)
        return cls(**values)  # type: ignore[arg-type]


def resolve_partitions(num_partitions: int | None) -> int:
    """Map an optional partition-count argument to the engine default."""
    if num_partitions is None:
        return DEFAULT_NUM_PARTITIONS
    return num_partitions
