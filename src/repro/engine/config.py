"""Engine configuration: partitioning, scheduling, fault-tolerance, optimizer.

One :class:`EngineConfig` replaces the ``num_partitions`` defaults that were
previously duplicated across ``Session``, ``PebbleSession`` and
``CapturedExecution.load``, and carries the knobs introduced by the
logical/physical split and the fault-tolerant scheduler layer: which backend
executes the partitions of a fused stage, how failed tasks are retried, and
which optimizer rules rewrite the plan before compilation.

The config is immutable and **keyword-only**; derive variants with
:meth:`replace` / :meth:`with_partitions`.  :meth:`from_env` builds the
process-wide default and honours environment overrides (``REPRO_SCHEDULER``,
``REPRO_OPTIMIZE``, ``REPRO_MAX_WORKERS``, ``REPRO_TASK_TIMEOUT``,
``REPRO_MAX_RETRIES``, ``REPRO_RETRY_BACKOFF``, ``REPRO_FAULTS``,
``REPRO_LAYOUT``, ``REPRO_PROFILE``) so an
entire test suite or benchmark run can be switched to, say, the process-pool
scheduler without touching call sites.  Environment variables are overrides;
every knob is equally settable in code:

>>> config = EngineConfig(scheduler="processes").replace(max_retries=3)
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass

from repro.engine.faults import parse_faults
from repro.errors import ExecutionError

__all__ = [
    "EngineConfig",
    "DEFAULT_NUM_PARTITIONS",
    "ALL_RULES",
    "resolve_partitions",
]

#: The engine-wide default partition count (formerly repeated as a literal
#: in every session/executor/loader signature).
DEFAULT_NUM_PARTITIONS = 4

#: All optimizer rules, in the order the optimizer applies them.
#: ``pushdown`` moves filters below select/flatten/with_column (plain runs
#: only), ``prune`` drops attributes no downstream operator accesses, and
#: ``fuse`` pipelines consecutive narrow operators into one stage.
ALL_RULES: tuple[str, ...] = ("pushdown", "prune", "fuse")

_SCHEDULERS = ("serial", "threads", "processes")

#: Partition representations: per-record nested objects vs the offset-encoded
#: columnar layout of :mod:`repro.engine.columnar`.
_LAYOUTS = ("rows", "columnar")


@dataclass(frozen=True, kw_only=True)
class EngineConfig:
    """Immutable execution configuration carried by a ``Session``."""

    num_partitions: int = DEFAULT_NUM_PARTITIONS
    #: ``"serial"``, ``"threads"`` (thread pool over partitions) or
    #: ``"processes"`` (process pool over pickled stage tasks).
    scheduler: str = "serial"
    #: Worker cap for the pool schedulers; ``None`` sizes from the CPU.
    max_workers: int | None = None
    #: Master switch for plan rewriting; ``False`` reproduces the seed
    #: operator-at-a-time execution exactly.
    optimize: bool = True
    #: Enabled rule subset (ablations disable individual rules).
    rules: tuple[str, ...] = ALL_RULES
    #: Wall-clock budget per partition task in seconds; ``None`` disables
    #: timeout enforcement (timeouts are transient -> retried).
    task_timeout: float | None = None
    #: Retries *after* the first attempt for transient task failures.
    max_retries: int = 2
    #: Base delay of the jitter-free exponential backoff between attempts.
    retry_backoff: float = 0.05
    #: Fault-injection spec (see :mod:`repro.engine.faults`); ``None`` off.
    faults: str | None = None
    #: Partition representation: ``"columnar"`` (offset-encoded columns with
    #: batch operator kernels, the default) or ``"rows"`` (per-record nested
    #: objects, the seed layout).  The layouts are result- and
    #: provenance-equivalent; ``REPRO_LAYOUT=rows`` restores the seed path.
    layout: str = "columnar"
    #: Attach the sampling profiler (:mod:`repro.obs.profile`) to execution:
    #: stacks are sampled per stage and written as folded output.  Off by
    #: default and zero-cost then; ``REPRO_PROFILE=on`` flips it.
    profile: bool = False

    def __post_init__(self) -> None:
        if self.num_partitions < 1:
            raise ExecutionError(f"need at least one partition, got {self.num_partitions}")
        if self.scheduler not in _SCHEDULERS:
            raise ExecutionError(
                f"unknown scheduler {self.scheduler!r}; pick one of {_SCHEDULERS}"
            )
        if self.layout not in _LAYOUTS:
            raise ExecutionError(
                f"unknown layout {self.layout!r}; pick one of {_LAYOUTS}"
            )
        unknown = set(self.rules) - set(ALL_RULES)
        if unknown:
            raise ExecutionError(
                f"unknown optimizer rules {sorted(unknown)}; known rules are {ALL_RULES}"
            )
        if self.max_workers is not None and self.max_workers < 1:
            raise ExecutionError(f"max_workers must be positive, got {self.max_workers}")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ExecutionError(f"task_timeout must be positive, got {self.task_timeout}")
        if self.max_retries < 0:
            raise ExecutionError(f"max_retries must be non-negative, got {self.max_retries}")
        if self.retry_backoff < 0:
            raise ExecutionError(f"retry_backoff must be non-negative, got {self.retry_backoff}")
        parse_faults(self.faults)  # validate the spec eagerly

    def rule_enabled(self, name: str) -> bool:
        """Return whether the optimizer rule *name* is active."""
        return self.optimize and name in self.rules

    def replace(self, **changes: object) -> "EngineConfig":
        """Return a copy with the given knobs overridden (the builder API).

        ``config.replace(scheduler="processes", max_retries=3)`` is the
        code-level equivalent of the environment switches; unknown knob
        names raise ``TypeError`` and the copy is re-validated.
        """
        if not changes:
            return self
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]

    def with_partitions(self, num_partitions: int | None) -> "EngineConfig":
        """Return a copy with the partition count overridden (``None`` keeps it)."""
        if num_partitions is None or num_partitions == self.num_partitions:
            return self
        return self.replace(num_partitions=num_partitions)

    @classmethod
    def from_env(cls, **overrides: object) -> "EngineConfig":
        """Build the default config, honouring environment overrides.

        Explicit *overrides* win over the environment; the environment wins
        over the built-in defaults.  Only behavioural knobs are read from the
        environment -- the partition count stays code-controlled because test
        expectations depend on it.
        """
        values: dict[str, object] = {}
        scheduler = os.environ.get("REPRO_SCHEDULER")
        if scheduler:
            values["scheduler"] = scheduler
        optimize = os.environ.get("REPRO_OPTIMIZE")
        if optimize:
            values["optimize"] = optimize.strip().lower() not in ("0", "false", "off", "no")
        max_workers = os.environ.get("REPRO_MAX_WORKERS")
        if max_workers:
            values["max_workers"] = int(max_workers)
        task_timeout = os.environ.get("REPRO_TASK_TIMEOUT")
        if task_timeout:
            values["task_timeout"] = float(task_timeout)
        max_retries = os.environ.get("REPRO_MAX_RETRIES")
        if max_retries:
            values["max_retries"] = int(max_retries)
        retry_backoff = os.environ.get("REPRO_RETRY_BACKOFF")
        if retry_backoff:
            values["retry_backoff"] = float(retry_backoff)
        faults = os.environ.get("REPRO_FAULTS")
        if faults:
            values["faults"] = faults
        layout = os.environ.get("REPRO_LAYOUT")
        if layout:
            values["layout"] = layout.strip().lower()
        profile = os.environ.get("REPRO_PROFILE")
        if profile:
            values["profile"] = profile.strip().lower() in ("on", "1", "true", "yes")
        values.update(overrides)
        return cls(**values)  # type: ignore[arg-type]


def resolve_partitions(num_partitions: int | None) -> int:
    """Map an optional partition-count argument to the engine default."""
    if num_partitions is None:
        return DEFAULT_NUM_PARTITIONS
    return num_partitions
