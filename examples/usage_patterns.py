"""Data-usage patterns for physical design (paper Sec. 7.3.5, Fig. 10).

Runs the five DBLP evaluation scenarios with provenance capture, answers
each scenario's structural provenance question, merges the provenance into
a usage analysis, and prints

* the Fig. 10-style heatmap (items x top-level attributes),
* hot/cold items and attributes,
* influencing-only attributes (accessed but never copied -- the paper's
  ``year`` observation), and
* vertical-partitioning and co-location advice.

Run with::

    python examples/usage_patterns.py
"""

from repro import PebbleSession, query_provenance
from repro.core.usecases.usage import UsageAnalysis
from repro.workloads.scenarios import DBLP_SCENARIOS, load_workload, scenario

SCALE = 0.5
SOURCE = "inproceedings.json"
ATTRIBUTES = ["key", "title", "authors", "year", "crossref", "pages"]


def main() -> None:
    usage = UsageAnalysis()

    for name in DBLP_SCENARIOS:
        spec = scenario(name)
        data = load_workload(spec.kind, SCALE)
        pebble = PebbleSession(num_partitions=4)
        execution = spec.build(pebble.session, data).execute(capture=True)
        provenance = query_provenance(execution, spec.pattern)
        usage.add(provenance)
        touched = sum(len(source) for source in provenance.sources)
        print(f"{name}: {spec.description} -> provenance of {touched} input items")

    print("\nUsage heatmap over the first 25 inproceedings (Fig. 10):")
    print(usage.render_heatmap(SOURCE, range(1, 26), ATTRIBUTES))

    print("\nHot items (top 5):", usage.hot_items(SOURCE)[:5])
    print("Cold items among ids 1-25:", usage.cold_items(SOURCE, range(1, 26)))
    print("Hot attributes:", usage.hot_attributes(SOURCE))
    print("Influencing-only attributes:", usage.influencing_only_attributes(SOURCE))
    print("Cold attributes:", usage.cold_attributes(SOURCE, ATTRIBUTES))

    print("\n" + usage.partitioning_advice(SOURCE, ATTRIBUTES))


if __name__ == "__main__":
    main()
