"""Quickstart: the paper's running example (Sec. 2) end to end.

Builds the Fig. 1 pipeline over the Tab. 1 tweets, executes it with
provenance capture, poses the Fig. 4 provenance question (why does user
``lp`` have a duplicate ``Hello World`` tweet?), and prints the backtraced
Fig. 2 trees distinguishing contributing from influencing attributes.

Run with::

    python examples/quickstart.py
"""

from repro import PebbleSession
from repro.workloads.scenarios import (
    RUNNING_EXAMPLE_PATTERN,
    RUNNING_EXAMPLE_TWEETS,
    build_running_example,
)


def main() -> None:
    pebble = PebbleSession(num_partitions=2)

    # 1. Build the pipeline of Fig. 1: authored tweets (retweet_count == 0)
    #    unified with mentioned-user tweets, grouped per user.
    pipeline = build_running_example(pebble.session, list(RUNNING_EXAMPLE_TWEETS))
    print("Logical plan:")
    print(pipeline.explain())

    # 2. Execute with structural provenance capture (the Pebble Core path).
    captured = pebble.run(pipeline)
    print("\nResult (Tab. 2):")
    for item in captured.items():
        print(" ", item)
    print("\nCaptured provenance:", captured.size_report())

    # 3. Ask the provenance question of Fig. 4: user 'lp' with the text
    #    'Hello World' occurring exactly twice in the nested tweets.
    print("\nProvenance question:", RUNNING_EXAMPLE_PATTERN)
    provenance = captured.backtrace(RUNNING_EXAMPLE_PATTERN)

    # 4. Inspect the backtraced trees (Fig. 2): the two 'Hello World' input
    #    tweets contribute text and user.id_str; retweet_count and user.name
    #    merely influenced the result (filter and grouping access).
    print("\nBacktraced provenance (Fig. 2):")
    print(provenance.render())

    entry = provenance.sources[0].entry(2)
    print("\ncontributing:", entry.contributing_paths())
    print("influencing: ", entry.influencing_paths())


if __name__ == "__main__":
    main()
