"""Debugging a nested-data pipeline with structural provenance (Sec. 1).

A data engineer notices an unexpected duplicate in a hashtag-to-users
rollup over the synthetic Twitter corpus (scenario T4's shape).  The
example shows the debugging workflow the paper motivates:

1. run the pipeline once with capture (eager, pay the overhead once),
2. pose successive tree-pattern questions against the same capture,
3. compare the precise structural answer with what a lineage tool would
   return, and
4. compare eager query time against a PROVision-style lazy re-run.

Run with::

    python examples/debugging_pipeline.py
"""

import time

from repro import PebbleSession, col, collect_set, struct_
from repro.baselines.lazy import LazyProvenanceQuerier
from repro.baselines.lineage import LineageQuerier
from repro.workloads.twitter import TwitterConfig, generate_tweets


def build(pebble: PebbleSession, tweets):
    authoring = (
        pebble.create_dataset(tweets, "tweets.json")
        .flatten("hashtags", "tag")
        .select(
            col("tag.text").alias("hashtag"),
            col("user.id_str").alias("uid"),
            col("user.name").alias("uname"),
        )
    )
    mentioned = (
        pebble.create_dataset(tweets, "tweets.json")
        .flatten("hashtags", "tag")
        .flatten("user_mentions", "m_user")
        .select(
            col("tag.text").alias("hashtag"),
            col("m_user.id_str").alias("uid"),
            col("m_user.name").alias("uname"),
        )
    )
    return (
        authoring.union(mentioned)
        .group_by(col("hashtag"))
        .agg(collect_set(struct_(id_str=col("uid"), name=col("uname"))).alias("users"))
    )


def main() -> None:
    tweets = generate_tweets(TwitterConfig(scale=0.5))
    pebble = PebbleSession(num_partitions=4)
    pipeline = build(pebble, tweets)

    captured = pebble.run(pipeline)
    pebble_row = next(item for item in captured.items() if item["hashtag"] == "pebble")
    print("#pebble row:", pebble_row)

    # Question 1: why is user u1 associated with #pebble?
    provenance = captured.backtrace('root{/hashtag="pebble", /users{/id_str="u1"}}')
    print("\nWhy is u1 under #pebble?")
    for source in provenance.sources:
        for entry in source:
            print(f"  input tweet id {entry.item_id}: {entry.item['id_str']}")
            print("    contributing:", entry.contributing_paths())

    # Question 2 on the SAME capture (holistic reuse): who put #edbt there?
    second = captured.backtrace('root{/hashtag="edbt"}')
    print("\n#edbt provenance sources:", {s.name: len(s) for s in second.sources})

    # Lineage comparison: how much more data would Titian flag?
    matched = set(provenance.matched_output_ids)
    lineage = LineageQuerier(captured.execution.store).backtrace_ids(
        captured.execution.root.oid, matched
    )
    lineage_count = sum(len(source.ids) for source in lineage)
    structural_count = sum(len(source) for source in provenance.sources)
    print(
        f"\nlineage returns {lineage_count} input tweets; structural provenance "
        f"pinpoints {structural_count} (and the exact attributes within them)"
    )

    # Eager vs. lazy (PROVision-style) query cost on this pipeline.
    start = time.perf_counter()
    captured.backtrace('root{/hashtag="pebble", /users{/id_str="u1"}}')
    eager = time.perf_counter() - start
    lazy_pipeline = build(PebbleSession(num_partitions=4), tweets)
    start = time.perf_counter()
    LazyProvenanceQuerier(lazy_pipeline).query('root{/hashtag="pebble", /users{/id_str="u1"}}')
    lazy = time.perf_counter() - start
    print(f"eager query: {eager * 1000:.1f} ms, lazy re-run: {lazy * 1000:.1f} ms "
          f"(x{lazy / eager:.0f})")


if __name__ == "__main__":
    main()
