"""GDPR auditing with structural provenance (paper Secs. 1 and 7.3.5).

Scenario: an insider ran a query over customer records and leaked its
result.  The auditor replays the query with Pebble's provenance capture,
matches the leaked rows via a tree pattern, and derives

* which customers are affected,
* exactly which of their attributes are reproducible from the leak
  (GDPR-reportable), and
* which attributes were merely *accessed* -- invisible in the leak but at
  risk of reconstruction attacks.

The example also quantifies how much a tuple-level lineage audit would
over-report (every attribute of every affected customer).

Run with::

    python examples/auditing_gdpr.py
"""

from repro import PebbleSession, col, struct_
from repro.core.usecases.auditing import audit_leak

CUSTOMERS = [
    {
        "customer_id": "c-100",
        "name": "Lisa Paul",
        "contact": {"email": "lisa@example.org", "phone": "+49-711-1"},
        "payment": {"card_number": "4111-1111", "iban": "DE44-0001"},
        "segment": "premium",
        "age": 34,
        "orders": [
            {"order_id": "o-1", "total": 129.90, "items": ["keyboard", "mouse"]},
            {"order_id": "o-2", "total": 19.90, "items": ["cable"]},
        ],
    },
    {
        "customer_id": "c-200",
        "name": "John Miller",
        "contact": {"email": "john@example.org", "phone": "+49-711-2"},
        "payment": {"card_number": "4222-2222", "iban": "DE44-0002"},
        "segment": "basic",
        "age": 51,
        "orders": [{"order_id": "o-3", "total": 999.00, "items": ["laptop"]}],
    },
    {
        "customer_id": "c-300",
        "name": "Lauren Smith",
        "contact": {"email": "lauren@example.org", "phone": "+49-711-3"},
        "payment": {"card_number": "4333-3333", "iban": "DE44-0003"},
        "segment": "premium",
        "age": 29,
        "orders": [],
    },
]


def main() -> None:
    pebble = PebbleSession(num_partitions=2)

    # The insider's query: premium customers' names, e-mails, and order totals.
    leaked_query = (
        pebble.create_dataset(CUSTOMERS, "customers.json")
        .filter(col("segment") == "premium")
        .flatten("orders", "order", outer=True)
        .select(
            col("name"),
            col("contact.email").alias("email"),
            struct_(order_id=col("order.order_id"), total=col("order.total")).alias("sale"),
        )
    )

    captured = pebble.run(leaked_query)
    print("Leaked result rows:")
    for item in captured.items():
        print(" ", item)

    # Audit the *entire* leaked result: the pattern names every leaked column.
    provenance = captured.backtrace("root{/name, /email, /sale}")
    report = audit_leak(provenance)

    print("\n" + report.render())

    source = "customers.json"
    schema_attributes = ["customer_id", "name", "contact", "payment", "segment", "age", "orders"]
    print("\naffected customers:", report.affected_ids(source))
    print("leaked attributes: ", sorted(report.leaked_attributes(source)))
    print("at-risk (accessed):", sorted(report.at_risk_attributes(source)))
    print(
        "lineage would over-report by a factor of "
        f"{report.lineage_overreport(source, schema_attributes):.1f} "
        "(it marks whole customer tuples, credit cards included)"
    )


if __name__ == "__main__":
    main()
