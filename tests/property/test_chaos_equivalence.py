"""Chaos equivalence: injected faults plus retries must not change anything.

Extends the optimizer-equivalence properties with the fault-tolerance layer:
for random plan shapes, a run with deterministic injected faults (healed by
the scheduler's retry protocol) under any backend -- serial, thread pool, or
process pool -- must produce results, provenance stores, and backtrace
answers identical to the fault-free seed execution.  This pins the retry
protocol's core soundness claim: stage tasks are pure, so re-execution is
invisible in every observable output.
"""

from hypothesis import given, settings, strategies as st

from repro.engine.config import EngineConfig
from repro.engine.session import Session
from repro.pebble.query import query_provenance
from tests.property.test_optimizer_equivalence import (
    SHAPES,
    _build,
    _store_fingerprint,
)

#: The seed execution path: no rewrites, serial scheduler, no faults.
BASELINE = EngineConfig(optimize=False)

#: Every chaos configuration must reproduce the baseline bit-for-bit.
#: ``flaky_once`` faults heal after one retry, so ``max_retries=2`` (the
#: default) always recovers; zero backoff keeps the suite fast.
CHAOS_VARIANTS = (
    ("serial+faults", EngineConfig(faults="flaky_once:0.5", retry_backoff=0.0)),
    (
        "threads+faults",
        EngineConfig(scheduler="threads", faults="flaky_once:0.5", retry_backoff=0.0),
    ),
    ("processes", EngineConfig(scheduler="processes")),
    (
        "processes+faults",
        EngineConfig(
            scheduler="processes", faults="flaky_once:0.5", retry_backoff=0.0
        ),
    ),
)


def _run(shape, k, config, capture=True):
    session = Session(num_partitions=2, config=config)
    return _build(session, shape, k).execute(capture=capture)


@given(st.sampled_from(sorted(SHAPES)), st.integers(min_value=0, max_value=4))
@settings(max_examples=8, deadline=None)
def test_chaos_runs_match_the_seed_execution(shape, k):
    baseline = _run(shape, k, BASELINE)
    expected_rows = baseline.rows()
    expected_store = _store_fingerprint(baseline.store)
    for name, config in CHAOS_VARIANTS:
        execution = _run(shape, k, config)
        assert execution.rows() == expected_rows, name
        assert _store_fingerprint(execution.store) == expected_store, name


@given(st.sampled_from(sorted(SHAPES)), st.integers(min_value=0, max_value=4))
@settings(max_examples=6, deadline=None)
def test_chaos_backtrace_answers_match_the_seed_execution(shape, k):
    pattern = SHAPES[shape]
    baseline = _run(shape, k, BASELINE)
    expected = query_provenance(baseline, pattern)
    for name, config in CHAOS_VARIANTS:
        execution = _run(shape, k, config)
        answer = query_provenance(execution, pattern)
        assert answer.matched_output_ids == expected.matched_output_ids, name
        assert answer.all_ids() == expected.all_ids(), name
        assert answer.render() == expected.render(), name


def test_faults_actually_fire_and_are_retried():
    """With p=1.0 every fused stage task fails once; the run still succeeds
    and the retry accounting proves the faults were injected, not skipped."""
    config = EngineConfig(faults="flaky_once:1.0", retry_backoff=0.0)
    baseline = _run("select-filter", 1, BASELINE)
    execution = _run("select-filter", 1, config)
    assert execution.rows() == baseline.rows()
    assert execution.metrics.task_retries > 0
    assert execution.metrics.task_attempts > execution.metrics.task_retries


def test_crash_faults_exhaust_the_retry_budget():
    """A ``crash`` probe at p=1.0 fails every attempt: the run must raise the
    *original* injected fault after the budget is spent."""
    import pytest

    from repro.errors import InjectedFault

    config = EngineConfig(faults="crash:1.0", max_retries=1, retry_backoff=0.0)
    with pytest.raises(InjectedFault, match="attempt 1"):
        _run("select-filter", 1, config)
