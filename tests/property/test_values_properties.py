"""Property-based tests for the nested value model."""

from hypothesis import given, settings, strategies as st

from repro.nested.json_io import item_from_json, item_to_json
from repro.nested.types import infer_type, unify
from repro.nested.values import Bag, DataItem, coerce_value, to_python

# -- strategies ---------------------------------------------------------------

_attr_names = st.text(
    alphabet="abcdefgh_", min_size=1, max_size=6
).filter(lambda name: not name.startswith("_"))

_constants = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**31), max_value=2**31),
    st.text(max_size=12),
)


def _values(depth: int = 2):
    if depth == 0:
        return _constants
    inner = _values(depth - 1)
    return st.one_of(
        _constants,
        st.lists(inner, max_size=3),
        st.dictionaries(_attr_names, inner, max_size=3),
    )


def _items(depth: int = 2):
    return st.dictionaries(_attr_names, _values(depth), min_size=1, max_size=4)


# -- properties ---------------------------------------------------------------


@given(_items())
@settings(max_examples=80)
def test_to_python_roundtrip(raw):
    item = DataItem(raw)
    roundtripped = DataItem(item.to_python())
    assert roundtripped == item


@given(_items())
@settings(max_examples=80)
def test_json_roundtrip(raw):
    item = DataItem(raw)
    assert item_from_json(item_to_json(item)) == item


@given(_items())
@settings(max_examples=80)
def test_equal_items_have_equal_hashes(raw):
    assert hash(DataItem(raw)) == hash(DataItem(dict(raw)))


@given(st.lists(_values(1), max_size=6))
@settings(max_examples=80)
def test_bag_order_and_length_preserved(values):
    bag = Bag(values)
    assert len(bag) == len(values)
    assert [to_python(element) for element in bag] == [
        to_python(coerce_value(value)) for value in values
    ]


@given(st.lists(_values(1), max_size=6))
@settings(max_examples=80)
def test_bag_positional_access_consistent(values):
    bag = Bag(values)
    for position in range(1, len(bag) + 1):
        assert bag.at(position) == bag[position - 1]


@given(_items(1), _items(1))
@settings(max_examples=60)
def test_replace_then_project_recovers_original_values(left, right):
    item = DataItem(left)
    updated = item.replace(**{name: coerce_value(value) for name, value in right.items()})
    untouched = [name for name in item.attributes() if name not in right]
    assert updated.project(untouched) == item.project(untouched)


@given(_items(1))
@settings(max_examples=60)
def test_type_inference_is_stable_under_unify(raw):
    """tau(d) unified with itself is tau(d) (for well-typed items)."""
    from hypothesis import assume

    from repro.errors import TypeInferenceError

    try:
        typ = infer_type(DataItem(raw))
    except TypeInferenceError:
        # Heterogeneous collections (e.g. [False, 0]) are outside the data
        # model's bag/set restriction; skip them.
        assume(False)
        return
    assert unify(typ, typ) == typ
