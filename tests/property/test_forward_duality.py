"""Forward tracing is the exact dual of backtracing, property-tested.

For random small pipelines over the exact-dual operator families (filter,
select, flatten, union, join, aggregation with collect_list/sum/count --
no deduplicating collectors), the audit subsystem's core guarantee holds
pairwise:

    x in forward({y})  <=>  y in backtrace(x)

for every source item ``y`` and every sink output ``x``, where backtrace(x)
seeds the full item tree (every path contributing).  A second property pins
the index soundness claim: a forward trace answered through the persisted
warehouse index serialises byte-identically to the full scan, under both
the lazy and the eager loading method.
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from hypothesis import given, settings, strategies as st

from repro.audit.forward import AUDIT_METHODS, ForwardTracer, trace_forward
from repro.core.backtrace.algorithms import Backtracer
from repro.core.backtrace.tree import BacktraceStructure, BacktraceTree
from repro.core.paths import enumerate_paths
from repro.engine.session import Session
from repro.warehouse import Warehouse
from tests.property.test_capture_properties import _SHAPES, _build, _rows

#: String patterns with guaranteed-present sentinels, per pipeline shape.
_PATTERNS = {
    "flatten": 'root{/tag="a"}',
    "join-self": 'root{/grp="g2"}',
}


def _pattern(shape: str) -> str:
    return _PATTERNS.get(shape, 'root{/grp="g1"}')


def _source_ids(execution) -> set[int]:
    store = execution.store
    ids: set[int] = set()
    for provenance in store.operators():
        if store.is_source(provenance.oid):
            ids.update(store.source_items(provenance.oid))
    return ids


def _backtrace_ids(execution, output_id: int, item) -> set[int]:
    """Full-item backtrace: every path of *item* seeds as contributing."""
    tree = BacktraceTree()
    for path in enumerate_paths(item):
        tree.ensure_path(path, contributing=True)
    structure = BacktraceStructure()
    structure.add(output_id, tree)
    sources = Backtracer(execution.store).backtrace(execution.root.oid, structure)
    return {item_id for source in sources for item_id in source.ids()}


@given(_rows, st.sampled_from(_SHAPES))
@settings(max_examples=25, deadline=None)
def test_forward_is_the_dual_of_backtrace(rows, shape):
    execution = _build(Session(2), rows, shape).execute(capture=True)
    tracer = ForwardTracer(execution)
    outputs = [(pid, item) for pid, item in execution.rows() if pid is not None]
    backward = {pid: _backtrace_ids(execution, pid, item) for pid, item in outputs}
    for y in sorted(_source_ids(execution)):
        forward = set(tracer.derived_output_ids({y}))
        for x, _ in outputs:
            assert (x in forward) == (y in backward[x]), (
                f"duality broken for shape={shape}: source {y}, output {x}: "
                f"forward={x in forward}, backward={y in backward[x]}"
            )


@given(_rows, st.sampled_from(_SHAPES), st.sampled_from(AUDIT_METHODS))
@settings(max_examples=10, deadline=None)
def test_indexed_answer_equals_full_scan(rows, shape, method):
    execution = _build(Session(2), rows, shape).execute(capture=True)
    with tempfile.TemporaryDirectory() as root:
        warehouse = Warehouse.open(Path(root) / "wh")
        warehouse.record(execution, name="prop")
        pattern = _pattern(shape)
        indexed = trace_forward(warehouse, pattern, method=method, use_index=True)
        scanned = trace_forward(warehouse, pattern, method=method, use_index=False)
        assert indexed.stats["index_used"] and not scanned.stats["index_used"]
        assert json.dumps(indexed.to_json(), sort_keys=True) == json.dumps(
            scanned.to_json(), sort_keys=True
        )
