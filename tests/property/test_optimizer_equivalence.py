"""Equivalence properties of the optimizing engine (the PR's key invariant).

For random plan shapes over the Twitter and DBLP generators, executing with
optimization on or off, under the serial or the thread-pool scheduler, must
produce identical results, identical provenance identifier sequences,
equivalent provenance stores, and identical backtrace answers.  The
``optimize off + serial`` configuration is the seed execution path, so these
properties pin the rewritten engine to the seed semantics.
"""

from hypothesis import given, settings, strategies as st

from repro.core.operator_provenance import UNDEFINED
from repro.engine.config import EngineConfig
from repro.engine.expressions import col, collect_list, count
from repro.engine.session import Session
from repro.obs.tracer import Tracer, tracing
from repro.pebble.query import query_provenance
from repro.workloads.dblp import DblpConfig, generate_dblp
from repro.workloads.twitter import TwitterConfig, generate_tweets

TWEETS = generate_tweets(TwitterConfig(scale=0.02, payload_width=2))
PAPERS = generate_dblp(DblpConfig(scale=0.01))["inproceedings"]

#: The seed execution path; every other configuration must match it.
BASELINE = ("no-opt serial", EngineConfig(optimize=False))
VARIANTS = (
    ("opt serial", EngineConfig()),
    ("opt threads", EngineConfig(scheduler="threads")),
    ("no-opt threads", EngineConfig(optimize=False, scheduler="threads")),
)

#: shape -> backtrace pattern over that shape's result schema.
SHAPES = {
    "select-filter": "root{/text}",  # filter above select: pushdown shape
    "alias-filter": "root{/t}",  # pushdown through a renaming projection
    "filter-flatten": "root{/m}",
    "flatten-filter": "root{//screen_name}",  # pushdown below flatten
    "flatten-agg": "root{/texts}",
    "agg": "root{/n}",
    "sort-limit": "root{/text}",
    "filter-limit": "root{/text}",  # per-partition limit prefix shape
    "union": "root{/text}",
    "distinct": "root{/lang}",
    "with-column": "root{/rc}",
    "dblp-flatten-agg": "root{/papers}",
    "dblp-select-filter": "root{/title}",
}


def _build(session: Session, shape: str, k: int):
    tweets = session.create_dataset(TWEETS, "tweets.json")
    if shape == "select-filter":
        return tweets.select(col("text"), col("retweet_count")).filter(
            col("retweet_count") >= k
        )
    if shape == "alias-filter":
        return tweets.select(
            col("text").alias("t"), col("retweet_count")
        ).filter(col("retweet_count") >= k)
    if shape == "filter-flatten":
        return tweets.filter(col("text").contains("good")).flatten(
            "user_mentions", "m"
        )
    if shape == "flatten-filter":
        return tweets.flatten("user_mentions", "m").filter(
            col("retweet_count") >= k
        )
    if shape == "flatten-agg":
        return (
            tweets.filter(col("retweet_count") >= k)
            .flatten("user_mentions", "m")
            .group_by(col("m"))
            .agg(collect_list(col("text")).alias("texts"))
        )
    if shape == "agg":
        return tweets.group_by(col("lang")).agg(
            count().alias("n"), collect_list(col("text")).alias("texts")
        )
    if shape == "sort-limit":
        return tweets.sort(col("retweet_count"), descending=True).limit(k + 1)
    if shape == "filter-limit":
        return tweets.filter(col("retweet_count") >= k).limit(3)
    if shape == "union":
        more = session.create_dataset(TWEETS, "more.json")
        return tweets.filter(col("retweet_count") >= k).union(
            more.filter(col("favorite_count") >= k)
        )
    if shape == "distinct":
        return tweets.select(col("lang")).distinct()
    if shape == "with-column":
        return tweets.with_column("rc", col("retweet_count")).filter(col("rc") >= k)
    papers = session.create_dataset(PAPERS, "inproceedings.json")
    if shape == "dblp-flatten-agg":
        return (
            papers.flatten("authors", "author")
            .group_by(col("author"))
            .agg(count().alias("papers"))
        )
    if shape == "dblp-select-filter":
        return papers.select(col("title"), col("year")).filter(col("year") >= 2013)
    raise AssertionError(shape)


def _run(shape: str, k: int, config: EngineConfig, capture: bool):
    session = Session(num_partitions=2, config=config)
    return _build(session, shape, k).execute(capture=capture)


def _accessed_key(accessed) -> object:
    if accessed is UNDEFINED:
        return "UNDEFINED"
    return tuple(sorted(map(repr, accessed)))


def _store_fingerprint(store) -> list[tuple]:
    fingerprint = []
    for provenance in sorted(store.operators(), key=lambda p: p.oid):
        associations = provenance.associations
        if hasattr(associations, "records"):
            payload = ("records", tuple(associations.records))
        else:
            payload = ("ids", tuple(associations.ids))
        manipulations = provenance.manipulations
        fingerprint.append(
            (
                provenance.oid,
                provenance.op_type,
                type(associations).__name__,
                payload,
                "UNDEFINED" if manipulations is UNDEFINED else repr(manipulations),
                tuple(
                    (ref.predecessor, _accessed_key(ref.accessed))
                    for ref in provenance.inputs
                ),
                store.source_name(provenance.oid) if store.is_source(provenance.oid) else None,
            )
        )
    return fingerprint


@given(st.sampled_from(sorted(SHAPES)), st.integers(min_value=0, max_value=4))
@settings(max_examples=40, deadline=None)
def test_capture_equivalent_across_configs(shape, k):
    baseline = _run(shape, k, BASELINE[1], capture=True)
    expected_rows = baseline.rows()
    expected_store = _store_fingerprint(baseline.store)
    for name, config in VARIANTS:
        execution = _run(shape, k, config, capture=True)
        assert execution.items() == baseline.items(), name
        assert execution.rows() == expected_rows, name
        assert _store_fingerprint(execution.store) == expected_store, name


@given(st.sampled_from(sorted(SHAPES)), st.integers(min_value=0, max_value=4))
@settings(max_examples=40, deadline=None)
def test_plain_results_equivalent_across_configs(shape, k):
    # Capture off: pushdown and the per-partition limit prefix are legal
    # here, so this run exercises rewrites the capture path must refuse.
    baseline = _run(shape, k, BASELINE[1], capture=False)
    for name, config in VARIANTS:
        execution = _run(shape, k, config, capture=False)
        assert execution.items() == baseline.items(), name
        # Schemas are sampled from runtime items, so on an *empty* result
        # they depend on where in the plan the rows ran out -- which filter
        # pushdown legitimately moves.  Non-empty results must agree.
        if baseline.items():
            assert execution.schema == baseline.schema, name
        assert execution.store is None, name


@given(st.sampled_from(sorted(SHAPES)), st.integers(min_value=0, max_value=4))
@settings(max_examples=25, deadline=None)
def test_tracing_does_not_perturb_results(shape, k):
    """Tracing only observes: traced runs must equal untraced runs exactly --
    same items, same provenance store, same backtrace answer -- while the
    tracer actually records execution and query spans."""
    pattern = SHAPES[shape]
    untraced = _run(shape, k, BASELINE[1], capture=True)
    expected_answer = query_provenance(untraced, pattern)
    for name, config in (BASELINE, VARIANTS[1]):  # seed path + opt threads
        tracer = Tracer()
        with tracing(tracer):
            traced = _run(shape, k, config, capture=True)
            answer = query_provenance(traced, pattern)
        assert traced.items() == untraced.items(), name
        assert traced.rows() == untraced.rows(), name
        assert _store_fingerprint(traced.store) == _store_fingerprint(untraced.store), name
        assert answer.matched_output_ids == expected_answer.matched_output_ids, name
        assert answer.all_ids() == expected_answer.all_ids(), name
        assert answer.render() == expected_answer.render(), name
        assert tracer.find("run"), name
        assert tracer.find("query", name="pattern-match"), name


@given(st.sampled_from(sorted(SHAPES)), st.integers(min_value=0, max_value=4))
@settings(max_examples=30, deadline=None)
def test_backtrace_answers_equivalent_across_configs(shape, k):
    pattern = SHAPES[shape]
    baseline = _run(shape, k, BASELINE[1], capture=True)
    expected = query_provenance(baseline, pattern)
    expected_sources = expected.all_ids()
    for name, config in VARIANTS:
        execution = _run(shape, k, config, capture=True)
        answer = query_provenance(execution, pattern)
        assert answer.matched_output_ids == expected.matched_output_ids, name
        assert answer.all_ids() == expected_sources, name
        assert answer.render() == expected.render(), name
