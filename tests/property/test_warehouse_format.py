"""Property-based round-trips of the warehouse binary segment format.

Random association bags, operator records, source items, and result rows
must survive encode/decode byte cursors unchanged -- including the cases
the historic ``ProvenanceStore.serialize()`` blob got wrong: aggregation
records of varying width (no length prefix), a legitimate id ``0`` on one
side of a binary association, and unmatched outer-join sides (``None``).
"""

from hypothesis import example, given, settings, strategies as st

from repro.core.operator_provenance import (
    AggregationAssociations,
    BinaryAssociations,
    FlattenAssociations,
    InputRef,
    OperatorProvenance,
    ReadAssociations,
    UNDEFINED,
    UnaryAssociations,
)
from repro.core.paths import parse_path
from repro.core.store import ProvenanceStore
from repro.errors import ProvenanceError
from repro.nested.json_io import _jsonable
from repro.nested.schema import infer_schema
from repro.nested.types import type_to_obj
from repro.nested.values import DataItem
import repro.warehouse.format as wf

import pytest

_ids = st.integers(min_value=0, max_value=wf.NONE_ID - 1)
_pos = st.integers(min_value=1, max_value=2**32 - 1)

_read = st.lists(_ids, unique=True, max_size=8).map(ReadAssociations)
_unary = st.lists(st.tuples(_ids, _ids), max_size=8).map(UnaryAssociations)
_flatten = st.lists(st.tuples(_ids, _pos, _ids), max_size=8).map(FlattenAssociations)
_binary = st.lists(
    st.tuples(st.none() | _ids, st.none() | _ids, _ids), max_size=8
).map(BinaryAssociations)
_aggregation = st.lists(
    st.tuples(st.lists(_ids, max_size=5).map(tuple), _ids), max_size=8
).map(AggregationAssociations)

_associations = st.one_of(_read, _unary, _flatten, _binary, _aggregation)

_paths = st.sampled_from(["a", "b.c", "tags[pos]", "user.name", "m[3].x"]).map(parse_path)
_accessed = st.just(UNDEFINED) | st.lists(_paths, max_size=3)
_schemas = st.none() | st.just(
    infer_schema([DataItem({"a": 1, "b": {"c": "x"}, "tags": ["t"]})])
)
_input_refs = st.builds(
    InputRef,
    st.none() | st.integers(min_value=0, max_value=2**32 - 2),
    _accessed,
    schema=_schemas,
)
_manipulations = st.just(UNDEFINED) | st.lists(st.tuples(_paths, _paths), max_size=3)

_operators = st.builds(
    OperatorProvenance,
    st.integers(min_value=0, max_value=2**32 - 1),
    st.sampled_from(["read", "filter", "select", "flatten", "union", "join", "aggregate"]),
    st.lists(_input_refs, max_size=3),
    _manipulations,
    _associations,
    st.sampled_from([None, "a label", "groupBy(user)"]),
)

_items = st.fixed_dictionaries(
    {
        "text": st.text(max_size=12),
        "count": st.integers(min_value=-5, max_value=5),
        "tags": st.lists(st.sampled_from(("a", "b")), max_size=3),
    }
).map(DataItem)


def _assert_associations_equal(left, right) -> None:
    assert type(left) is type(right)
    if isinstance(left, ReadAssociations):
        assert list(right.ids) == list(left.ids)
    else:
        assert list(right.records) == list(left.records)


def _assert_operators_equal(left: OperatorProvenance, right: OperatorProvenance) -> None:
    assert right.oid == left.oid
    assert right.op_type == left.op_type
    assert right.label == left.label
    assert len(right.inputs) == len(left.inputs)
    for ref_left, ref_right in zip(left.inputs, right.inputs):
        assert ref_right.predecessor == ref_left.predecessor
        if ref_left.accessed is UNDEFINED:
            assert ref_right.accessed is UNDEFINED
        else:
            assert {str(p) for p in ref_right.accessed} == {
                str(p) for p in ref_left.accessed
            }
        if ref_left.schema is None:
            assert ref_right.schema is None
        else:
            assert ref_right.schema is not None
            assert type_to_obj(ref_right.schema.struct) == type_to_obj(ref_left.schema.struct)
    if left.manipulations_undefined():
        assert right.manipulations_undefined()
    else:
        assert [
            (str(a), str(b)) for a, b in right.manipulations_or_empty()
        ] == [(str(a), str(b)) for a, b in left.manipulations_or_empty()]
    _assert_associations_equal(left.associations, right.associations)


@given(_operators)
@settings(max_examples=120, deadline=None)
def test_operator_record_round_trip(provenance):
    raw = wf.encode_operator(provenance)
    cursor = wf.Cursor(raw)
    decoded = wf.decode_operator(cursor)
    assert cursor.offset == len(raw), "record must be fully self-delimiting"
    _assert_operators_equal(provenance, decoded)


@given(st.lists(_associations, max_size=4))
@settings(max_examples=80, deadline=None)
def test_store_blob_round_trip(bags):
    # Wrap each bag in a minimal operator so varying-width aggregation
    # records sit back to back in one blob -- the undecodable case of the
    # historic format.
    operators = [
        OperatorProvenance(index, "op", [InputRef(None, UNDEFINED)], UNDEFINED, bag)
        for index, bag in enumerate(bags)
    ]
    decoded = wf.decode_store_blob(wf.encode_store_blob(operators))
    assert len(decoded) == len(operators)
    for original, restored in zip(operators, decoded):
        _assert_operators_equal(original, restored)


@given(st.lists(_associations, min_size=1, max_size=4))
@settings(max_examples=60, deadline=None)
def test_provenance_store_serialize_round_trip(bags):
    store = ProvenanceStore()
    for index, bag in enumerate(bags):
        store.register(
            OperatorProvenance(index, "op", [InputRef(None, UNDEFINED)], UNDEFINED, bag)
        )
    restored = ProvenanceStore.deserialize(store.serialize())
    assert len(restored) == len(store)
    for original in store.operators():
        _assert_operators_equal(original, restored.get(original.oid))


@given(
    st.text(max_size=20),
    st.dictionaries(_ids, _items, max_size=6),
)
@settings(max_examples=80, deadline=None)
def test_source_items_round_trip(name, items):
    raw = wf.encode_source_items(name, items)
    decoded_name, decoded = wf.decode_source_items(wf.Cursor(raw))
    assert decoded_name == name
    assert set(decoded) == set(items)
    for item_id, item in items.items():
        assert _jsonable(decoded[item_id]) == _jsonable(item)


@given(st.lists(st.tuples(st.none() | _ids, _items), max_size=6))
@settings(max_examples=80, deadline=None)
def test_rows_round_trip(rows):
    decoded = wf.decode_rows(wf.Cursor(wf.encode_rows(rows)))
    assert len(decoded) == len(rows)
    for (pid, item), (decoded_pid, decoded_item) in zip(rows, decoded):
        assert decoded_pid == pid
        assert _jsonable(decoded_item) == _jsonable(item)


@given(_binary)
@example(BinaryAssociations([(0, None, 5), (None, 0, 6), (0, 0, 7)]))
@settings(max_examples=80, deadline=None)
def test_binary_id_zero_never_conflated_with_none(bag):
    """id 0 and "no match" survive as distinct values (the historic bug)."""
    operator = OperatorProvenance(1, "union", [InputRef(None, UNDEFINED)], UNDEFINED, bag)
    decoded = wf.decode_operator(wf.Cursor(wf.encode_operator(operator)))
    assert list(decoded.associations.records) == list(bag.records)


def test_aggregation_varying_widths_round_trip():
    """Multi-input aggregation records with different widths stay aligned."""
    bag = AggregationAssociations([((), 1), ((7,), 2), ((3, 0, 9), 4)])
    operator = OperatorProvenance(2, "aggregate", [InputRef(1, UNDEFINED)], UNDEFINED, bag)
    decoded = wf.decode_operator(wf.Cursor(wf.encode_operator(operator)))
    assert list(decoded.associations.records) == [((), 1), ((7,), 2), ((3, 0, 9), 4)]


def test_store_blob_rejects_bad_magic_and_version():
    operators = [
        OperatorProvenance(1, "read", [InputRef(None, UNDEFINED)], UNDEFINED, ReadAssociations([1]))
    ]
    blob = wf.encode_store_blob(operators)
    with pytest.raises(ProvenanceError):
        wf.decode_store_blob(b"XXXX" + blob[4:])
    with pytest.raises(ProvenanceError):
        wf.decode_store_blob(blob[:4] + (999).to_bytes(2, "little") + blob[6:])


@given(_operators, st.integers(min_value=1, max_value=16))
@settings(max_examples=60, deadline=None)
def test_truncated_record_raises_not_garbage(provenance, cut):
    raw = wf.encode_operator(provenance)
    if cut >= len(raw):
        cut = len(raw)
    with pytest.raises(ProvenanceError):
        wf.decode_operator(wf.Cursor(raw[: len(raw) - cut]))


def test_oversized_id_rejected_at_encode_time():
    bag = BinaryAssociations([(wf.NONE_ID, None, 1)])
    operator = OperatorProvenance(1, "union", [InputRef(None, UNDEFINED)], UNDEFINED, bag)
    with pytest.raises(ProvenanceError):
        wf.encode_operator(operator)
