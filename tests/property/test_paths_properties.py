"""Property-based tests for access paths and tree patterns."""

from hypothesis import given, settings, strategies as st

from repro.core.paths import POS, Path, Step, enumerate_paths, parse_path
from repro.core.treepattern.parser import parse_pattern
from repro.core.treepattern.pattern import TreePattern, child, descendant
from repro.nested.values import DataItem

_names = st.text(alphabet="abcxyz_", min_size=1, max_size=5)
_positions = st.one_of(st.none(), st.integers(min_value=1, max_value=9), st.just(POS))
_steps = st.builds(Step, _names, _positions)
_paths = st.builds(Path, st.lists(_steps, max_size=5))


@given(_paths)
@settings(max_examples=100)
def test_path_parse_print_roundtrip(path):
    assert parse_path(str(path)) == path


@given(_paths)
@settings(max_examples=100)
def test_schematic_is_idempotent(path):
    assert path.schematic().schematic() == path.schematic()


@given(_paths)
@settings(max_examples=100)
def test_placeholders_then_schematic_equals_schematic(path):
    assert path.with_placeholders().schematic() == path.schematic()


@given(_paths, _paths)
@settings(max_examples=100)
def test_concat_prefix_relation(prefix, suffix):
    combined = prefix.concat(suffix)
    assert combined.startswith(prefix)
    assert combined.replace_prefix(prefix, prefix) == combined


@given(_paths)
@settings(max_examples=100)
def test_every_path_is_prefix_of_itself(path):
    assert path.startswith(path)
    assert path.startswith(path, schematic=True)


# -- enumerate_paths over random items ------------------------------------------

_attr_names = st.text(alphabet="abcde", min_size=1, max_size=4)
_constants = st.one_of(st.integers(), st.text(max_size=5), st.none())


def _nested_values(depth=2):
    if depth == 0:
        return _constants
    inner = _nested_values(depth - 1)
    return st.one_of(
        _constants,
        st.lists(inner, max_size=3),
        st.dictionaries(_attr_names, inner, max_size=3),
    )


@given(st.dictionaries(_attr_names, _nested_values(), min_size=1, max_size=4))
@settings(max_examples=80)
def test_enumerated_paths_all_evaluate(raw):
    item = DataItem(raw)
    for path in enumerate_paths(item):
        assert path.resolves_in(item)


# -- tree patterns ----------------------------------------------------------------

_pattern_values = st.one_of(
    st.integers(min_value=-99, max_value=99),
    st.text(alphabet="abc \"\\", max_size=6),
    st.booleans(),
    st.none(),
)


def _pattern_nodes(depth=2):
    base_kwargs = {
        "equals": _pattern_values,
        "count": st.one_of(
            st.none(),
            st.tuples(st.integers(0, 3), st.integers(3, 9)),
            st.tuples(st.integers(0, 3), st.none()),
        ),
    }
    if depth == 0:
        children = st.just(())
    else:
        children = st.lists(_pattern_nodes(depth - 1), max_size=2).map(tuple)

    def build(name, edge_is_child, equals, count, kids):
        builder = child if edge_is_child else descendant
        return builder(name, *kids, equals=equals, count=count)

    return st.builds(
        build, _names, st.booleans(), base_kwargs["equals"], base_kwargs["count"], children
    )


@given(st.lists(_pattern_nodes(), min_size=1, max_size=3))
@settings(max_examples=80)
def test_pattern_render_parse_roundtrip(nodes):
    pattern = TreePattern(nodes)
    rendered = pattern.render()
    assert parse_pattern(rendered).render() == rendered


# -- matcher vs. a naive reference ------------------------------------------------


@given(st.dictionaries(_attr_names, _nested_values(), min_size=1, max_size=4))
@settings(max_examples=60)
def test_descendant_matching_agrees_with_path_enumeration(raw):
    """``//name`` matches exactly the enumerated paths ending in ``name``."""
    from repro.core.treepattern.matcher import match_item
    from repro.core.treepattern.pattern import TreePattern, descendant

    item = DataItem(raw)
    for name in item.attributes():
        matched = match_item(TreePattern.root(descendant(name)), item)
        assert matched is not None
        expected = {
            path
            for path in enumerate_paths(item)
            if path.last().name == name and path.last().pos is None
        }
        assert {p for p in matched} == expected


@given(st.dictionaries(_attr_names, _nested_values(), min_size=1, max_size=4))
@settings(max_examples=60)
def test_wildcard_descendant_matches_all_attribute_paths(raw):
    from repro.core.treepattern.matcher import match_item
    from repro.core.treepattern.pattern import TreePattern, descendant

    item = DataItem(raw)
    matched = match_item(TreePattern.root(descendant("*")), item)
    expected = {
        path for path in enumerate_paths(item) if path.last().pos is None
    }
    assert matched == expected
