"""Streaming == batch: the equivalence property of micro-batch capture.

Splitting one bounded input into N micro-batches, streaming them through a
:class:`~repro.stream.StreamSession`, and sealing with ``compact=True`` must
leave the warehouse with the *same run* a one-shot batch capture of the
concatenated input records: identical segment bytes (operator provenance,
sink rows, index) and identical backtrace answers -- across split points,
partition counts, layouts, and schedulers.  And a query admitted mid-ingest
must answer exactly like the sealed run restricted to the epochs that were
visible at admission (``max_epoch``), which is the incremental-query
consistency contract of the serve tier.

Event times are monotone here: late rows are *defined* to diverge from
batch (a batch run has no lateness), so they are exercised in the unit
tests, not in this equivalence matrix.
"""

from __future__ import annotations

import json
from pathlib import Path

from hypothesis import given, settings, strategies as st

from repro.engine.config import EngineConfig
from repro.engine.expressions import col, collect_list, count
from repro.engine.session import Session
from repro.nested.values import DataItem
from repro.pebble.query import query_provenance
from repro.stream import StreamSession, TumblingWindow, window_by
from repro.warehouse import Warehouse

CONFIGS = (
    ("rows serial", EngineConfig(layout="rows")),
    ("columnar serial", EngineConfig(layout="columnar")),
    ("columnar threads", EngineConfig(layout="columnar", scheduler="threads")),
)

#: Streamable plan shapes: a narrow chain and a windowed aggregation.
SHAPES = {
    "narrow": 'root{/user="u1", /tag="red"}',
    "window": 'root{/user="u1", /ids}',
}


def _rows(n: int) -> list[dict]:
    return [
        {
            "id": i,
            "user": f"u{i % 3}",
            "ts": float(i),  # monotone: no late rows, exact equivalence
            "tags": [{"tag": ["red", "blue"][i % 2]}, {"tag": "green"}],
        }
        for i in range(n)
    ]


def _build(shape: str, dataset):
    if shape == "narrow":
        return (
            dataset.filter(col("id") >= 1)
            .flatten("tags", "t")
            .select(col("user"), col("id"), col("t.tag"))
        )
    return window_by(
        dataset, col("ts"), TumblingWindow(4.0), col("user")
    ).agg(collect_list(col("id")).alias("ids"), count().alias("n"))


def _chunks(rows: list[dict], cuts: list[int]) -> list[list[dict]]:
    bounds = sorted({cut % (len(rows) + 1) for cut in cuts} | {0, len(rows)})
    return [
        rows[lo:hi] for lo, hi in zip(bounds, bounds[1:])
    ]


def _segment_files(run_dir: Path) -> dict[str, bytes]:
    return {
        str(path.relative_to(run_dir)): path.read_bytes()
        for path in sorted(run_dir.rglob("*.seg"))
    }


def _stable_manifest(run_dir: Path) -> dict:
    manifest = json.loads((run_dir / "manifest.json").read_text())
    for volatile in ("run_id", "name", "created"):
        manifest.pop(volatile, None)
    return manifest


@given(
    shape=st.sampled_from(sorted(SHAPES)),
    n=st.integers(min_value=6, max_value=14),
    cuts=st.lists(st.integers(min_value=1, max_value=13), min_size=1, max_size=3),
    named_config=st.sampled_from(CONFIGS),
    partitions=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=20, deadline=None)
def test_streaming_compacted_equals_one_shot_batch(
    tmp_path_factory, shape, n, cuts, named_config, partitions
):
    name, config = named_config
    rows = _rows(n)
    root = tmp_path_factory.mktemp("stream-eq")

    stream = StreamSession(
        warehouse=root / "wh", name="s", num_partitions=partitions, config=config
    )
    stream.open(_build(shape, stream.dataset()))
    for chunk in _chunks(rows, cuts):
        if chunk:
            stream.ingest(chunk)
    record = stream.finish(compact=True)
    warehouse = stream.warehouse

    batch_session = Session(num_partitions=partitions, config=config)
    batch = _build(
        shape, batch_session.create_dataset([DataItem(row) for row in rows], "stream")
    ).execute(capture=True)
    batch_record = warehouse.record(batch, name="batch", index=True)

    stream_dir = warehouse.run_dir(record.run_id)
    batch_dir = warehouse.run_dir(batch_record.run_id)
    assert _segment_files(stream_dir) == _segment_files(batch_dir), name
    assert _stable_manifest(stream_dir) == _stable_manifest(batch_dir), name

    pattern = SHAPES[shape]
    streamed, _ = warehouse.backtrace(record.run_id, pattern)
    batched = query_provenance(batch, pattern)
    assert streamed.matched_output_ids == batched.matched_output_ids, name
    assert streamed.all_ids() == batched.all_ids(), name
    assert streamed.render() == batched.render(), name


@given(
    shape=st.sampled_from(sorted(SHAPES)),
    n=st.integers(min_value=6, max_value=12),
    cuts=st.lists(st.integers(min_value=1, max_value=11), min_size=1, max_size=2),
    partitions=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=15, deadline=None)
def test_mid_ingest_query_equals_sealed_run_at_admission_epoch(
    tmp_path_factory, shape, n, cuts, partitions
):
    rows = _rows(n)
    root = tmp_path_factory.mktemp("stream-mid")
    stream = StreamSession(
        warehouse=root / "wh", name="s", num_partitions=partitions
    )
    stream.open(_build(shape, stream.dataset()))
    warehouse = stream.warehouse
    pattern = SHAPES[shape]

    live_answers: list[tuple[int, list, dict, str]] = []
    for chunk in _chunks(rows, cuts):
        if not chunk:
            continue
        stream.ingest(chunk)
        answer, _ = warehouse.backtrace(stream.run_id, pattern)
        live_answers.append(
            (stream.epochs, answer.matched_output_ids, answer.all_ids(), answer.render())
        )
    stream.finish(compact=False)

    for epoch, matched, ids, rendered in live_answers:
        pinned = query_provenance(
            warehouse.load(stream.run_id, max_epoch=epoch), pattern
        )
        assert pinned.matched_output_ids == matched, epoch
        assert pinned.all_ids() == ids, epoch
        assert pinned.render() == rendered, epoch
