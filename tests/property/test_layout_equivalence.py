"""Layout-equivalence properties of the columnar capture core.

For random plan shapes, executing under ``layout="columnar"`` -- whole-column
batch kernels, offset-encoded partitions, raw-buffer pickling -- must be
indistinguishable from the row layout: byte-identical result rows, serialized
provenance stores, backtrace answers, and forward traces, across every
scheduler backend.  The row layout under the serial scheduler is the seed
execution path, so these properties pin the columnar engine to the seed
semantics exactly as the optimizer/chaos matrices pin the other axes.
"""

from hypothesis import given, settings, strategies as st

from repro.engine.config import EngineConfig
from repro.pebble.query import query_provenance

from tests.property.test_optimizer_equivalence import (
    SHAPES,
    _run,
    _store_fingerprint,
)

#: The seed execution path; every columnar configuration must match it.
BASELINE = ("rows serial", EngineConfig(layout="rows"))
COLUMNAR_VARIANTS = (
    ("columnar serial", EngineConfig(layout="columnar")),
    ("columnar threads", EngineConfig(layout="columnar", scheduler="threads")),
)
#: The process pool re-pickles every task; exercised on fewer examples.
COLUMNAR_PROCS = ("columnar procs", EngineConfig(layout="columnar", scheduler="processes"))

#: Shapes whose fused chains hit every kernel (filter/select/flatten/
#: with_column/prune) plus wide stages -- the subset worth a process pool.
_PROCS_SHAPES = ("filter-flatten", "flatten-agg", "with-column", "union")


@given(st.sampled_from(sorted(SHAPES)), st.integers(min_value=0, max_value=4))
@settings(max_examples=40, deadline=None)
def test_columnar_rows_and_stores_byte_identical(shape, k):
    baseline = _run(shape, k, BASELINE[1], capture=True)
    expected_rows = baseline.rows()
    expected_blob = baseline.store.serialize()
    for name, config in COLUMNAR_VARIANTS:
        execution = _run(shape, k, config, capture=True)
        assert execution.rows() == expected_rows, name
        assert execution.store.serialize() == expected_blob, name
        assert _store_fingerprint(execution.store) == _store_fingerprint(baseline.store), name


@given(st.sampled_from(sorted(SHAPES)), st.integers(min_value=0, max_value=4))
@settings(max_examples=40, deadline=None)
def test_columnar_plain_results_identical(shape, k):
    baseline = _run(shape, k, BASELINE[1], capture=False)
    for name, config in COLUMNAR_VARIANTS:
        execution = _run(shape, k, config, capture=False)
        assert execution.items() == baseline.items(), name
        if baseline.items():
            assert execution.schema == baseline.schema, name
        assert execution.store is None, name


@given(st.sampled_from(sorted(SHAPES)), st.integers(min_value=0, max_value=4))
@settings(max_examples=30, deadline=None)
def test_columnar_backtraces_identical(shape, k):
    pattern = SHAPES[shape]
    baseline = _run(shape, k, BASELINE[1], capture=True)
    expected = query_provenance(baseline, pattern)
    for name, config in COLUMNAR_VARIANTS:
        execution = _run(shape, k, config, capture=True)
        answer = query_provenance(execution, pattern)
        assert answer.matched_output_ids == expected.matched_output_ids, name
        assert answer.all_ids() == expected.all_ids(), name
        assert answer.render() == expected.render(), name


@given(st.sampled_from(_PROCS_SHAPES), st.integers(min_value=0, max_value=2))
@settings(max_examples=6, deadline=None)
def test_columnar_process_pool_identical(shape, k):
    baseline = _run(shape, k, BASELINE[1], capture=True)
    execution = _run(shape, k, COLUMNAR_PROCS[1], capture=True)
    assert execution.rows() == baseline.rows()
    assert execution.store.serialize() == baseline.store.serialize()
    pattern = SHAPES[shape]
    assert (
        query_provenance(execution, pattern).render()
        == query_provenance(baseline, pattern).render()
    )


def test_columnar_forward_traces_identical(tmp_path):
    """Recorded runs agree end-to-end: warehouse bytes, backtraces from the
    stored run, and forward traces are identical whichever layout executed
    (the columnar writer streams rows instead of materialising them)."""
    from repro.warehouse import Warehouse

    subject = "root{/text}"
    for shape in ("filter-flatten", "flatten-agg", "union"):
        results = {}
        for name, config in (BASELINE, COLUMNAR_VARIANTS[0], COLUMNAR_VARIANTS[1]):
            execution = _run(shape, 1, config, capture=True)
            warehouse = Warehouse.open(tmp_path / name.replace(" ", "-") / shape)
            record = warehouse.record(execution, name=shape)
            forward = warehouse.forward(record.run_id, subject)
            back, _ = warehouse.backtrace(record.run_id, SHAPES[shape])
            results[name] = (
                sorted(forward.output_ids),
                forward.matched_input_count,
                back.render(),
            )
        baseline = results[BASELINE[0]]
        for name, _ in COLUMNAR_VARIANTS:
            assert results[name] == baseline, (shape, name)
