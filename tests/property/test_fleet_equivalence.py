"""Property: the serve fleet is answer-transparent.

For any pattern from a pool of valid structural queries, any trace method,
and any subject list, three ways of asking must agree byte-for-byte:

* the library directly (``query_provenance`` over ``Warehouse.load``),
* a local client (``repro.connect("file://...")`` -- in-process service
  with admission control and caching),
* the fleet (``repro.connect("http://router")`` -- three workers behind
  consistent-hash routing, audit questions scatter-gathered and merged).

One module-scoped fleet serves every example: hypothesis varies the
questions, not the topology, so the suite stays fast while still walking
the merge paths (multi-run SAR/erasure, cache hits on repeats, both trace
methods) in unpredictable orders.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro
from repro.engine.session import Session
from repro.pebble.query import query_provenance
from repro.serve.fleet import Fleet
from repro.serve.router import RouterService, RouterServer
from repro.serve.service import result_to_json
from repro.warehouse import Warehouse
from repro.workloads.scenarios import (
    RUNNING_EXAMPLE_TWEETS,
    build_running_example,
)

PATTERNS = [
    'root{//id_str="lp"}',
    'root{//id_str="lp", /tweets{/text="Hello World"[2,2]}}',
    'root{/tweets{/text="Hello World"[1,*]}}',
    'root{/tweets{/text="Hello @lp"}}',
    'root{/user{/id_str="lp"}}',
    'root{//*="nope"}',
]
SUBJECT_POOL = ["lp", "vx", "dq", "nobody-xyz"]

_settings = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@pytest.fixture(scope="module")
def tiers(tmp_path_factory):
    """(warehouse, local client, fleet client, run ids) over two runs."""
    root = tmp_path_factory.mktemp("equiv") / "wh"
    captured = build_running_example(
        Session(num_partitions=2), [dict(t) for t in RUNNING_EXAMPLE_TWEETS]
    ).execute(capture=True)
    warehouse = Warehouse.open(root)
    warehouse.init_shards(2)
    run_ids = [
        warehouse.record(captured, name=f"equiv-{index}").run_id
        for index in range(2)
    ]
    with Fleet(root, size=3, mode="thread") as fleet:
        router = RouterService(fleet.workers())
        with RouterServer(router) as server:
            local = repro.connect(f"file://{root}")
            remote = repro.connect(server.url)
            yield warehouse, local, remote, run_ids
            local.close()


def _canon(payload) -> str:
    return json.dumps(payload, sort_keys=True)


class TestBacktraceEquivalence:
    @_settings
    @given(
        pattern=st.sampled_from(PATTERNS),
        method=st.sampled_from(["lazy", "eager"]),
        run_index=st.integers(min_value=0, max_value=1),
    )
    def test_three_tiers_agree(self, tiers, pattern, method, run_index):
        warehouse, local, remote, run_ids = tiers
        run_id = run_ids[run_index]
        direct = _canon(
            result_to_json(query_provenance(warehouse.load(run_id), pattern))
        )
        assert _canon(
            local.backtrace(pattern, run=run_id, method=method)["result"]
        ) == direct
        assert _canon(
            remote.backtrace(pattern, run=run_id, method=method)["result"]
        ) == direct


class TestAuditEquivalence:
    @_settings
    @given(
        subjects=st.lists(
            st.sampled_from(SUBJECT_POOL), min_size=1, max_size=3, unique=True
        ),
        method=st.sampled_from(["lazy", "eager"]),
    )
    def test_sar_pages_agree(self, tiers, subjects, method):
        _, local, remote, _ = tiers
        assert _canon(
            local.sar(subjects, method=method)["report"]
        ) == _canon(remote.sar(subjects, method=method)["report"])

    @_settings
    @given(
        subjects=st.lists(
            st.sampled_from(SUBJECT_POOL), min_size=1, max_size=3, unique=True
        ),
    )
    def test_erasure_digests_agree(self, tiers, subjects):
        _, local, remote, _ = tiers
        ours = local.verify_erasure(subjects)["report"]
        theirs = remote.verify_erasure(subjects)["report"]
        assert _canon(ours) == _canon(theirs)
        assert ours["digest"] == theirs["digest"]
