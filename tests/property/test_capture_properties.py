"""Property-based tests for capture and backtracing invariants.

Random small pipelines over random flat-ish datasets check the paper's core
guarantees:

* capture never changes the pipeline result,
* backtraced structural ids are a subset of lineage ids,
* every backtraced id resolves to a real input item, and
* matched output items always have non-empty seeds.
"""

from hypothesis import given, settings, strategies as st

from repro.baselines.lineage import LineageQuerier
from repro.core.backtrace.algorithms import Backtracer
from repro.core.treepattern.matcher import match_partitions, seed_structure
from repro.core.treepattern.pattern import TreePattern, child
from repro.engine.expressions import col, collect_list, count, sum_
from repro.engine.session import Session

_GROUPS = ("g1", "g2", "g3")
_LABELS = ("a", "b", "c", "d")

_rows = st.lists(
    st.fixed_dictionaries(
        {
            "grp": st.sampled_from(_GROUPS),
            "val": st.integers(min_value=0, max_value=9),
            "label": st.sampled_from(_LABELS),
            "tags": st.lists(st.sampled_from(_LABELS), max_size=3),
        }
    ),
    min_size=1,
    max_size=12,
)

#: Pipeline shapes exercising every operator family.
_SHAPES = ("filter", "select", "flatten", "aggregate", "union", "join-self")


def _build(session: Session, rows, shape: str):
    base = session.create_dataset(rows, "in")
    if shape == "filter":
        return base.filter(col("val") >= 3)
    if shape == "select":
        return base.select(col("grp"), col("label"))
    if shape == "flatten":
        return base.flatten("tags", "tag")
    if shape == "aggregate":
        return base.group_by(col("grp")).agg(
            collect_list(col("label")).alias("labels"),
            sum_(col("val")).alias("total"),
            count(),
        )
    if shape == "union":
        other = session.create_dataset(rows, "in2")
        return base.union(other)
    if shape == "join-self":
        keyed = session.create_dataset(
            [{"g": group, "weight": index} for index, group in enumerate(_GROUPS)], "dims"
        )
        return base.join(keyed, col("grp") == col("g"))
    raise AssertionError(shape)


def _pattern(shape: str) -> TreePattern:
    if shape == "flatten":
        return TreePattern.root(child("tag", equals="a"))
    if shape == "aggregate":
        return TreePattern.root(child("grp", equals="g1"), child("labels"))
    if shape == "join-self":
        return TreePattern.root(child("grp", equals="g2"), child("weight"))
    return TreePattern.root(child("grp", equals="g1"))


@given(_rows, st.sampled_from(_SHAPES))
@settings(max_examples=60, deadline=None)
def test_capture_does_not_change_results(rows, shape):
    plain = _build(Session(2), rows, shape).execute(capture=False)
    captured = _build(Session(2), rows, shape).execute(capture=True)
    assert sorted(map(repr, plain.items())) == sorted(map(repr, captured.items()))


@given(_rows, st.sampled_from(_SHAPES))
@settings(max_examples=60, deadline=None)
def test_structural_ids_subset_of_lineage_ids(rows, shape):
    execution = _build(Session(2), rows, shape).execute(capture=True)
    pattern = _pattern(shape)
    matches = match_partitions(pattern, execution.partitions)
    seeds = seed_structure(matches)
    sources = Backtracer(execution.store).backtrace(execution.root.oid, seeds)
    structural = {
        item_id for source in sources for item_id in source.structure.ids()
    }
    lineage_sources = LineageQuerier(execution.store).backtrace_ids(
        execution.root.oid, {match.item_id for match in matches}
    )
    lineage = set().union(*(source.ids for source in lineage_sources)) if lineage_sources else set()
    assert structural <= lineage


@given(_rows, st.sampled_from(_SHAPES))
@settings(max_examples=60, deadline=None)
def test_backtraced_ids_resolve_to_input_items(rows, shape):
    execution = _build(Session(2), rows, shape).execute(capture=True)
    pattern = _pattern(shape)
    matches = match_partitions(pattern, execution.partitions)
    sources = Backtracer(execution.store).backtrace(
        execution.root.oid, seed_structure(matches)
    )
    for source in sources:
        known = execution.store.source_items(source.oid)
        for item_id in source.structure.ids():
            assert item_id in known


@given(_rows, st.sampled_from(_SHAPES))
@settings(max_examples=60, deadline=None)
def test_output_ids_unique_per_operator(rows, shape):
    execution = _build(Session(2), rows, shape).execute(capture=True)
    for provenance in execution.store.operators():
        output_ids = list(provenance.associations.output_ids())
        assert len(output_ids) == len(set(output_ids))


@given(_rows)
@settings(max_examples=40, deadline=None)
def test_flatten_positions_are_valid(rows):
    execution = _build(Session(2), rows, "flatten").execute(capture=True)
    flatten_provenance = next(
        provenance
        for provenance in execution.store.operators()
        if provenance.op_type == "flatten"
    )
    sources = {
        item_id: item
        for item_id, item in execution.store.source_items(1).items()
    }
    for id_in, pos, _id_out in flatten_provenance.associations.records:
        tags = sources[id_in]["tags"]
        assert 1 <= pos <= len(tags)


@given(_rows)
@settings(max_examples=40, deadline=None)
def test_aggregation_positions_align_with_collections(rows):
    """The i-th grouped input id produced the i-th collected element."""
    execution = _build(Session(2), rows, "aggregate").execute(capture=True)
    agg_provenance = next(
        provenance
        for provenance in execution.store.operators()
        if provenance.op_type == "aggregate"
    )
    outputs = dict(execution.rows())
    inputs = execution.store.source_items(1)
    for ids_in, id_out in agg_provenance.associations.records:
        labels = outputs[id_out]["labels"]
        assert len(labels) == len(ids_in)
        for position, id_in in enumerate(ids_in, start=1):
            assert labels.at(position) == inputs[id_in]["label"]
