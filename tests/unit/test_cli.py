"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scenario_validation(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario", "T9"])

    def test_bench_choices(self):
        args = build_parser().parse_args(["bench", "fig8", "--scale", "0.5"])
        assert args.figure == "fig8"
        assert args.scale == 0.5

    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as info:
            build_parser().parse_args(["--version"])
        assert info.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {repro.__version__}"

    def test_version_through_main(self, capsys):
        """`python -m repro --version` routes through main() the same way."""
        import repro

        with pytest.raises(SystemExit) as info:
            main(["--version"])
        assert info.value.code == 0
        assert repro.__version__ in capsys.readouterr().out


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("T1", "T5", "D1", "D5"):
            assert name in out

    def test_example(self, capsys):
        assert main(["example"]) == 0
        out = capsys.readouterr().out
        assert "Lisa Paul" in out
        assert "contributing" in out

    def test_example_trace_writes_chrome_trace(self, tmp_path, capsys):
        import json

        from repro.obs.tracer import get_tracer, iter_b_e_pairs, NULL_TRACER

        path = tmp_path / "trace.json"
        assert main(["example", "--trace", str(path)]) == 0
        assert get_tracer() is NULL_TRACER, "the CLI must deactivate its tracer"
        payload = json.loads(path.read_text())
        pairs = list(iter_b_e_pairs(payload["traceEvents"]))
        assert pairs, "a traced run must record spans"
        names = {event["name"] for event in payload["traceEvents"] if event["ph"] == "B"}
        assert "run" in names and "pattern-match" in names
        assert f"wrote trace {path}" in capsys.readouterr().out

    def test_scenario_with_query(self, capsys):
        assert main(["scenario", "D1", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "result rows:" in out
        assert "matched result items: 1" in out

    def test_scenario_no_query(self, capsys):
        assert main(["scenario", "T1", "--scale", "0.1", "--no-query"]) == 0
        out = capsys.readouterr().out
        assert "query:" not in out

    def test_scenario_pattern_override(self, capsys):
        assert main(
            ["scenario", "D2", "--scale", "0.1", "--pattern", 'root{/key="conf/pebble/2015"}']
        ) == 0
        out = capsys.readouterr().out
        assert 'root{/key="conf/pebble/2015"}' in out

    def test_bench_fig8(self, capsys, tmp_path):
        history = tmp_path / "history.jsonl"
        assert main(
            ["bench", "fig8", "--scale", "0.1", "--history", str(history)]
        ) == 0
        out = capsys.readouterr().out
        assert "Fig. 8(a)" in out and "Fig. 8(b)" in out
        assert "history: appended" in out
        assert history.exists()

    def test_bench_fig8_no_history(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "fig8", "--scale", "0.1", "--no-history"]) == 0
        out = capsys.readouterr().out
        assert "history: appended" not in out
        assert not (tmp_path / "benchmarks").exists()

    def test_heatmap(self, capsys):
        assert main(["heatmap", "--scale", "0.1", "--items", "5"]) == 0
        out = capsys.readouterr().out
        assert "id" in out.splitlines()[0]
        assert "advice:" in out
