"""Unit tests for the bench history JSONL and the regression gate."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.bench.history import (
    HISTORY_ENV,
    append_history,
    detect_regressions,
    metric_field,
    read_history,
    record_key,
    render_regressions,
    resolve_history_path,
)

REPO_ROOT = Path(__file__).resolve().parents[3]


def _ablation(seconds, scenario="T1", config="prune+fuse"):
    return {
        "scenario": scenario,
        "scale": 0.2,
        "config_name": config,
        "seconds": seconds,
        "stdev": 0.001,
        "rules_fired": ["prune", "fuse"],
    }


class TestAppendAndRead:
    def test_append_creates_dirs_and_stamps_records(self, tmp_path):
        target = tmp_path / "nested" / "history.jsonl"
        written = append_history(
            "ablation", 0.2, [_ablation(1.0)], path=str(target), sha="abc1234"
        )
        assert written == str(target)
        records = read_history(str(target))
        assert len(records) == 1
        record = records[0]
        assert record["figure"] == "ablation"
        assert record["scale"] == 0.2
        assert record["git_sha"] == "abc1234"
        assert record["seconds"] == 1.0
        assert record["ts_iso"].endswith("+00:00")

    def test_appends_accumulate(self, tmp_path):
        target = tmp_path / "h.jsonl"
        append_history("ablation", 0.2, [_ablation(1.0)], path=str(target))
        append_history("ablation", 0.2, [_ablation(1.1)], path=str(target))
        assert [r["seconds"] for r in read_history(str(target))] == [1.0, 1.1]

    def test_corrupt_lines_are_skipped(self, tmp_path):
        target = tmp_path / "h.jsonl"
        append_history("ablation", 0.2, [_ablation(1.0)], path=str(target))
        with open(target, "a", encoding="utf-8") as handle:
            handle.write("not json\n\n[1,2]\n")
        append_history("ablation", 0.2, [_ablation(1.2)], path=str(target))
        assert [r["seconds"] for r in read_history(str(target))] == [1.0, 1.2]

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_history(str(tmp_path / "absent.jsonl")) == []

    def test_env_can_disable_and_redirect(self, tmp_path, monkeypatch):
        monkeypatch.setenv(HISTORY_ENV, "off")
        assert resolve_history_path() is None
        assert append_history("ablation", 0.2, [_ablation(1.0)]) is None
        redirected = tmp_path / "redirect.jsonl"
        monkeypatch.setenv(HISTORY_ENV, str(redirected))
        assert resolve_history_path() == str(redirected)
        # An explicit path still wins over the environment.
        assert resolve_history_path("/x/y.jsonl") == "/x/y.jsonl"


class TestSeriesIdentity:
    def test_key_ignores_metrics_and_meta(self):
        a = _ablation(1.0)
        b = _ablation(2.5)
        b["ts_iso"] = "2026-01-01T00:00:00+00:00"
        b["git_sha"] = "fff"
        assert record_key(a) == record_key(b)
        other = _ablation(1.0, config="no-opt")
        assert record_key(a) != record_key(other)

    def test_metric_prefers_seconds(self):
        assert metric_field(_ablation(1.0)) == "seconds"
        assert metric_field({"scenario": "T1", "structural_bytes": 178}) == \
            "structural_bytes"
        assert metric_field({"scenario": "T1"}) is None


class TestDetectRegressions:
    def test_flat_series_is_clean(self):
        records = [_ablation(1.0 + i * 0.001) for i in range(5)]
        assert detect_regressions(records) == []

    def test_double_latency_is_flagged(self):
        records = [_ablation(1.0), _ablation(1.02), _ablation(2.0)]
        findings = detect_regressions(records, threshold=0.2)
        assert len(findings) == 1
        finding = findings[0]
        assert finding["metric"] == "seconds"
        assert finding["ratio"] == pytest.approx(2.0 / 1.01)
        assert finding["series"]["scenario"] == "T1"
        assert "T1" in render_regressions(findings)

    def test_single_observation_has_no_baseline(self):
        assert detect_regressions([_ablation(99.0)]) == []

    def test_median_baseline_shrugs_off_one_spike(self):
        # One historic outlier must not mask (or cause) a regression.
        records = [
            _ablation(1.0), _ablation(9.0), _ablation(1.0),
            _ablation(1.0), _ablation(1.1),
        ]
        assert detect_regressions(records, threshold=0.2) == []

    def test_window_bounds_the_baseline(self):
        # Old fast runs outside the window are forgotten: the series
        # settled at 2.0 and the latest 2.1 is within budget.
        records = [_ablation(1.0)] + [_ablation(2.0)] * 5 + [_ablation(2.1)]
        assert detect_regressions(records, threshold=0.2, window=5) == []

    def test_series_are_independent(self):
        records = [
            _ablation(1.0), _ablation(1.0, config="no-opt"),
            _ablation(1.0), _ablation(3.0, config="no-opt"),
        ]
        findings = detect_regressions(records, threshold=0.2)
        assert [f["series"]["config_name"] for f in findings] == ["no-opt"]


class TestRegressGateScript:
    def _run(self, *argv):
        return subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "bench_regress.py"), *argv],
            capture_output=True, text=True, timeout=60,
        )

    def test_clean_history_exits_zero(self, tmp_path):
        target = tmp_path / "h.jsonl"
        append_history("ablation", 0.2, [_ablation(1.0), _ablation(1.0)],
                       path=str(target))
        append_history("ablation", 0.2, [_ablation(1.01)], path=str(target))
        result = self._run("--history", str(target))
        assert result.returncode == 0, result.stdout + result.stderr
        assert "no regressions" in result.stdout

    def test_synthetic_2x_regression_exits_nonzero(self, tmp_path):
        target = tmp_path / "h.jsonl"
        append_history("ablation", 0.2, [_ablation(1.0)], path=str(target))
        append_history("ablation", 0.2, [_ablation(2.0)], path=str(target))
        result = self._run("--history", str(target), "--threshold", "0.2")
        assert result.returncode == 1, result.stdout + result.stderr
        assert "1 regression(s)" in result.stdout

    def test_missing_history_exits_zero(self, tmp_path):
        result = self._run("--history", str(tmp_path / "absent.jsonl"))
        assert result.returncode == 0
        assert "nothing to compare" in result.stdout
