"""Unit tests for the benchmark reporting renderers."""

from repro.bench.harness import (
    CaptureMeasurement,
    OperatorMeasurement,
    QueryMeasurement,
    SizeMeasurement,
    TitianMeasurement,
)
from repro.bench.reporting import (
    format_table,
    render_capture_overhead,
    render_operator_overhead,
    render_provenance_sizes,
    render_query_times,
    render_titian_comparison,
)


class TestFormatTable:
    def test_alignment(self):
        table = format_table(("a", "bb"), [("1", "2"), ("33", "4444")])
        lines = table.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines equally wide

    def test_empty_rows(self):
        table = format_table(("x",), [])
        assert table.splitlines()[0].strip() == "x"


class TestRenderers:
    def test_capture_overhead(self):
        measurement = CaptureMeasurement("T1", 1.0, (0.1, 0.0), (0.15, 0.0), 42)
        text = render_capture_overhead([measurement], "title")
        assert "title" in text
        assert "+50%" in text
        assert "42" in text

    def test_capture_overhead_zero_plain(self):
        measurement = CaptureMeasurement("T1", 1.0, (0.0, 0.0), (0.1, 0.0), 1)
        assert measurement.overhead_pct == 0.0

    def test_provenance_sizes_units(self):
        small = SizeMeasurement("T1", 1.0, 500, 100, 10)
        big = SizeMeasurement("D3", 1.0, 2_000_000, 300_000, 99)
        text = render_provenance_sizes([small, big], "sizes")
        assert "500B" in text
        assert "2.00MB" in text

    def test_query_times_speedup(self):
        measurement = QueryMeasurement("T3", 1.0, 0.01, 0.05, 2)
        text = render_query_times([measurement], "queries")
        assert "x5.0" in text

    def test_query_times_infinite_speedup(self):
        measurement = QueryMeasurement("T3", 1.0, 0.0, 0.05, 2)
        assert measurement.speedup == float("inf")

    def test_titian(self):
        measurement = TitianMeasurement(1.0, 1.06, 1.07)
        text = render_titian_comparison(measurement)
        assert "+6.00%" in text
        assert "+7.00%" in text

    def test_operator_overhead(self):
        measurement = OperatorMeasurement("flatten", 0.1, 0.12)
        text = render_operator_overhead([measurement])
        assert "flatten" in text
        assert "+20%" in text
