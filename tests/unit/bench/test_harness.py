"""Unit tests for the measurement harness (fast configurations only)."""

from repro.bench.harness import (
    measure_capture_overhead,
    measure_provenance_size,
    measure_query_times,
    measure_titian_comparison,
)


class TestCaptureOverhead:
    def test_produces_one_measurement_per_scenario_scale(self):
        measurements = measure_capture_overhead(["D1", "D2"], scales=(0.05, 0.1), repeats=1)
        assert [(m.scenario, m.scale) for m in measurements] == [
            ("D1", 0.05),
            ("D2", 0.05),
            ("D1", 0.1),
            ("D2", 0.1),
        ]
        assert all(m.plain_seconds > 0 and m.capture_seconds > 0 for m in measurements)


class TestProvenanceSize:
    def test_sizes_positive_and_split(self):
        [measurement] = measure_provenance_size(["D1"], scale=0.05)
        assert measurement.lineage_bytes > 0
        assert measurement.structural_bytes > 0
        assert measurement.total_bytes == (
            measurement.lineage_bytes + measurement.structural_bytes
        )
        assert measurement.records > 0

    def test_size_grows_with_scale(self):
        [small] = measure_provenance_size(["D1"], scale=0.05)
        [large] = measure_provenance_size(["D1"], scale=0.2)
        assert large.total_bytes > small.total_bytes


class TestQueryTimes:
    def test_eager_beats_lazy(self):
        [measurement] = measure_query_times(["D1"], scale=0.05, repeats=1)
        assert measurement.lazy_seconds > measurement.eager_seconds
        assert measurement.source_count == 2
        assert measurement.speedup > 1


class TestTitianComparison:
    def test_overheads_computed(self):
        measurement = measure_titian_comparison(scale=0.2, repeats=2)
        assert measurement.plain_seconds > 0
        # Overheads can be noisy at this tiny scale; just check they are finite.
        assert measurement.titian_overhead_pct == measurement.titian_overhead_pct
        assert measurement.pebble_overhead_pct == measurement.pebble_overhead_pct
