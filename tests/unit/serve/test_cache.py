"""PatternResultCache: LRU, single-flight, failure, and invalidation."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ServeError, TaskTimeoutError
from repro.serve.cache import PatternResultCache


class TestBasics:
    def test_miss_computes_then_hit_returns_cached(self):
        cache = PatternResultCache(4)
        calls = []
        value, hit = cache.get_or_compute("k", lambda: calls.append(1) or "answer")
        assert (value, hit) == ("answer", False)
        value, hit = cache.get_or_compute("k", lambda: calls.append(1) or "other")
        assert (value, hit) == ("answer", True)
        assert len(calls) == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ServeError):
            PatternResultCache(0)

    def test_lru_evicts_least_recently_used(self):
        cache = PatternResultCache(2)
        cache.get_or_compute("a", lambda: 1)
        cache.get_or_compute("b", lambda: 2)
        cache.get_or_compute("a", lambda: None)  # refresh a
        cache.get_or_compute("c", lambda: 3)  # evicts b
        assert cache.stats.evictions == 1
        _, hit = cache.get_or_compute("a", lambda: None)
        assert hit
        _, hit = cache.get_or_compute("b", lambda: 2)
        assert not hit

    def test_capacity_one_never_evicts_the_incoming_key(self):
        cache = PatternResultCache(1)
        cache.get_or_compute("a", lambda: 1)
        value, hit = cache.get_or_compute("b", lambda: 2)
        assert (value, hit) == (2, False)
        value, hit = cache.get_or_compute("b", lambda: None)
        assert (value, hit) == (2, True)

    def test_invalidate_clears_and_counts(self):
        cache = PatternResultCache(4)
        cache.get_or_compute("a", lambda: 1)
        cache.get_or_compute("b", lambda: 2)
        assert cache.invalidate() == 2
        assert len(cache) == 0
        assert cache.stats.invalidations == 1
        assert cache.invalidate() == 0  # empty: not counted again
        assert cache.stats.invalidations == 1
        _, hit = cache.get_or_compute("a", lambda: 1)
        assert not hit

    def test_snapshot_reports_entries_and_stats(self):
        cache = PatternResultCache(4)
        cache.get_or_compute("a", lambda: 1)
        cache.get_or_compute("a", lambda: 1)
        snap = cache.snapshot()
        assert snap["entries"] == 1
        assert snap["hits"] == 1
        assert snap["misses"] == 1


class TestFailure:
    def test_error_propagates_and_does_not_poison(self):
        cache = PatternResultCache(4)

        def boom():
            raise ValueError("transient")

        with pytest.raises(ValueError):
            cache.get_or_compute("k", boom)
        assert len(cache) == 0
        value, hit = cache.get_or_compute("k", lambda: "recovered")
        assert (value, hit) == ("recovered", False)


class TestSingleFlight:
    def test_concurrent_misses_compute_once(self):
        cache = PatternResultCache(4)
        barrier = threading.Barrier(8)
        calls = []
        call_lock = threading.Lock()
        results = []
        results_lock = threading.Lock()

        def compute():
            with call_lock:
                calls.append(1)
            return "answer"

        def request():
            barrier.wait()
            value, hit = cache.get_or_compute("k", compute, wait_timeout=10)
            with results_lock:
                results.append((value, hit))

        threads = [threading.Thread(target=request) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(calls) == 1
        assert cache.stats.misses == 1
        assert cache.stats.hits == 7
        assert all(value == "answer" for value, _ in results)
        assert sum(1 for _, hit in results if not hit) == 1

    def test_waiters_see_the_owners_error(self):
        cache = PatternResultCache(4)
        release = threading.Event()
        entered = threading.Event()

        def boom():
            entered.set()
            release.wait(5)
            raise RuntimeError("owner failed")

        owner_error = []
        waiter_error = []

        def owner():
            try:
                cache.get_or_compute("k", boom)
            except RuntimeError as exc:
                owner_error.append(exc)

        def waiter():
            entered.wait(5)
            try:
                cache.get_or_compute("k", lambda: "never", wait_timeout=5)
            except RuntimeError as exc:
                waiter_error.append(exc)

        threads = [threading.Thread(target=owner), threading.Thread(target=waiter)]
        for thread in threads:
            thread.start()
        entered.wait(5)
        release.set()
        for thread in threads:
            thread.join()
        assert owner_error and waiter_error
        assert str(waiter_error[0]) == "owner failed"

    def test_wait_timeout_raises_task_timeout(self):
        cache = PatternResultCache(4)
        release = threading.Event()
        entered = threading.Event()

        def slow():
            entered.set()
            release.wait(5)
            return "late"

        thread = threading.Thread(
            target=lambda: cache.get_or_compute("k", slow)
        )
        thread.start()
        entered.wait(5)
        try:
            with pytest.raises(TaskTimeoutError):
                cache.get_or_compute("k", lambda: "never", wait_timeout=0.05)
        finally:
            release.set()
            thread.join()


class TestInvalidateRuns:
    """Run-scoped invalidation over the serving layer's four key shapes."""

    @staticmethod
    def _populated() -> PatternResultCache:
        cache = PatternResultCache(16)
        # query/forward keys scope a single run id at position 1; a pattern
        # can be cached under both directions independently.
        cache.get_or_compute(("query", "run-1", "root{/a}", "lazy"), lambda: "q1")
        cache.get_or_compute(("forward", "run-1", "root{/a}", "lazy"), lambda: "f1")
        cache.get_or_compute(("query", "run-2", "root{/a}", "lazy"), lambda: "q2")
        # sar/erasure keys scope a tuple of run ids.
        cache.get_or_compute(
            ("sar", ("run-1", "run-2"), ("u1",), "tmpl", "lazy", 1, 100), lambda: "s12"
        )
        cache.get_or_compute(
            ("erasure", ("run-2", "run-3"), ("u1",), "tmpl", "lazy"), lambda: "e23"
        )
        return cache

    def test_single_run_drops_both_directions_and_member_tuples(self):
        cache = self._populated()
        assert cache.invalidate_runs({"run-1"}) == 3  # q1, f1, s12
        _, hit = cache.get_or_compute(("query", "run-2", "root{/a}", "lazy"), lambda: None)
        assert hit  # other runs survive
        _, hit = cache.get_or_compute(
            ("erasure", ("run-2", "run-3"), ("u1",), "tmpl", "lazy"), lambda: None
        )
        assert hit

    def test_multi_run_key_drops_on_any_member(self):
        cache = self._populated()
        assert cache.invalidate_runs({"run-3"}) == 1  # only e23 spans run-3
        _, hit = cache.get_or_compute(
            ("sar", ("run-1", "run-2"), ("u1",), "tmpl", "lazy", 1, 100), lambda: None
        )
        assert hit

    def test_unknown_run_drops_nothing_and_counts_nothing(self):
        cache = self._populated()
        assert cache.invalidate_runs({"run-9"}) == 0
        assert cache.stats.invalidations == 0

    def test_one_invalidation_event_per_sweep(self):
        cache = self._populated()
        assert cache.invalidate_runs({"run-1", "run-2", "run-3"}) == 5
        assert cache.stats.invalidations == 1
        assert len(cache) == 0

    def test_unrecognised_key_shape_drops_conservatively(self):
        cache = PatternResultCache(4)
        cache.get_or_compute("bare-string-key", lambda: 1)
        cache.get_or_compute(("query", "run-1", "p", "lazy"), lambda: 2)
        assert cache.invalidate_runs({"run-2"}) == 1  # only the bare key
        _, hit = cache.get_or_compute(("query", "run-1", "p", "lazy"), lambda: None)
        assert hit
