"""ServeClient: the retry protocol against a scripted stub server."""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.engine.scheduler import RetryPolicy
from repro.errors import AdmissionError, ServeError, TaskTimeoutError
from repro.serve.client import DEFAULT_CLIENT_POLICY, ServeClient, _error_for

NO_BACKOFF = RetryPolicy(max_retries=3, backoff=0.0)


class _StubHandler(BaseHTTPRequestHandler):
    """Answers each request with the next scripted (status, payload) pair."""

    def log_message(self, format, *args):  # noqa: A002 (stdlib signature)
        pass

    def _respond(self):
        self.server.requests.append((self.command, self.path))
        status, payload = self.server.script[
            min(len(self.server.requests), len(self.server.script)) - 1
        ]
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    do_GET = do_POST = _respond


@pytest.fixture
def stub_server():
    """A server whose responses follow ``server.script``; yields (url, server)."""
    server = ThreadingHTTPServer(("127.0.0.1", 0), _StubHandler)
    server.script = [(200, {"status": "ok"})]
    server.requests = []
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.server_port}", server
    finally:
        server.shutdown()
        thread.join(timeout=5)
        server.server_close()


class TestErrorMapping:
    def test_status_codes_map_to_typed_errors(self):
        assert isinstance(_error_for(429, "full"), AdmissionError)
        assert isinstance(_error_for(504, "slow"), TaskTimeoutError)
        assert _error_for(503, "down").retryable
        assert not _error_for(400, "bad").retryable
        assert not _error_for(500, "boom").retryable


class TestRetries:
    def test_retries_through_429_to_success(self, stub_server):
        url, server = stub_server
        server.script = [
            (429, {"error": "queue full"}),
            (429, {"error": "queue full"}),
            (200, {"runs": [{"run_id": "r1"}]}),
        ]
        client = ServeClient(url, policy=NO_BACKOFF)
        assert client.runs() == [{"run_id": "r1"}]
        assert len(server.requests) == 3

    def test_non_retryable_error_fails_immediately(self, stub_server):
        url, server = stub_server
        server.script = [(400, {"error": "bad pattern"})]
        client = ServeClient(url, policy=NO_BACKOFF)
        with pytest.raises(ServeError) as info:
            client.query("not-a-pattern")
        assert "bad pattern" in str(info.value)
        assert len(server.requests) == 1

    def test_exhausted_retries_raise_the_last_error(self, stub_server):
        url, server = stub_server
        server.script = [(429, {"error": "still full"})]
        client = ServeClient(url, policy=RetryPolicy(max_retries=1, backoff=0.0))
        with pytest.raises(AdmissionError):
            client.healthz()
        assert len(server.requests) == 2  # first try + one retry

    def test_unreachable_server_is_retryable(self):
        client = ServeClient(
            "http://127.0.0.1:1", policy=RetryPolicy(max_retries=0, backoff=0.0)
        )
        with pytest.raises(ServeError) as info:
            client.healthz()
        assert info.value.retryable

    def test_query_posts_json_payload(self, stub_server):
        url, server = stub_server
        server.script = [(200, {"run_id": "r1", "result": {}})]
        client = ServeClient(url, policy=NO_BACKOFF)
        client.query("root{}", run_id="r1", method="eager")
        verb, path = server.requests[0]
        assert (verb, path) == ("POST", "/v1/query")

    def test_default_policy_bounds_attempts(self):
        assert DEFAULT_CLIENT_POLICY.max_attempts == 4
