"""QueryPool: admission control, deadlines, accounting, lifecycle."""

from __future__ import annotations

import threading

import pytest

from repro.errors import AdmissionError, ServeError, TaskTimeoutError
from repro.serve.pool import QueryPool


def _hold(release: threading.Event, entered: threading.Event):
    def body():
        entered.set()
        release.wait(10)
        return "held"

    return body


class TestAdmission:
    def test_full_queue_rejects_immediately(self):
        release = threading.Event()
        entered = threading.Event()
        with QueryPool(workers=1, queue_limit=1, deadline=None) as pool:
            results = []
            threads = [
                threading.Thread(
                    target=lambda: results.append(
                        pool.run(_hold(release, entered))
                    )
                )
                for _ in range(2)
            ]
            threads[0].start()
            assert entered.wait(5)
            threads[1].start()
            # Both in-flight slots (1 worker + 1 queue) are now taken; wait
            # until the second submission is actually pending.
            for _ in range(100):
                if pool.pending() == 2:
                    break
                threading.Event().wait(0.01)
            assert pool.pending() == 2
            assert pool.queue_depth() == 1
            with pytest.raises(AdmissionError) as info:
                pool.run(lambda: "rejected")
            assert info.value.retryable
            release.set()
            for thread in threads:
                thread.join()
            assert results == ["held", "held"]
            assert pool.stats.rejected == 1
            assert pool.stats.admitted == 2
            assert pool.stats.completed == 2

    def test_zero_queue_limit_allows_workers_only(self):
        release = threading.Event()
        entered = threading.Event()
        with QueryPool(workers=1, queue_limit=0, deadline=None) as pool:
            thread = threading.Thread(
                target=lambda: pool.run(_hold(release, entered))
            )
            thread.start()
            assert entered.wait(5)
            with pytest.raises(AdmissionError):
                pool.run(lambda: None)
            release.set()
            thread.join()

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ServeError):
            QueryPool(workers=0)
        with pytest.raises(ServeError):
            QueryPool(queue_limit=-1)


class TestDeadline:
    def test_slow_request_times_out_with_504_semantics(self):
        release = threading.Event()
        with QueryPool(workers=1, queue_limit=0, deadline=0.05) as pool:
            try:
                with pytest.raises(TaskTimeoutError) as info:
                    pool.run(lambda: release.wait(10))
                assert info.value.retryable
                assert pool.stats.timeouts == 1
            finally:
                release.set()

    def test_per_call_deadline_overrides_default(self):
        with QueryPool(workers=1, deadline=None) as pool:
            release = threading.Event()
            try:
                with pytest.raises(TaskTimeoutError):
                    pool.run(lambda: release.wait(10), deadline=0.05)
            finally:
                release.set()

    def test_timed_out_but_queued_request_releases_its_slot(self):
        release = threading.Event()
        entered = threading.Event()
        with QueryPool(workers=1, queue_limit=1, deadline=None) as pool:
            thread = threading.Thread(
                target=lambda: pool.run(_hold(release, entered))
            )
            thread.start()
            assert entered.wait(5)
            # This one never reaches a worker; its future is cancelled on
            # timeout, so the pending slot must come back.
            with pytest.raises(TaskTimeoutError):
                pool.run(lambda: "queued", deadline=0.05)
            assert pool.pending() == 1
            release.set()
            thread.join()
            assert pool.pending() == 0


class TestLifecycle:
    def test_result_passes_through(self):
        with QueryPool(workers=2) as pool:
            assert pool.run(lambda: 21 * 2) == 42

    def test_exception_passes_through(self):
        with QueryPool(workers=2) as pool:
            with pytest.raises(KeyError):
                pool.run(lambda: {}["missing"])
            assert pool.stats.completed == 1

    def test_closed_pool_refuses_work(self):
        pool = QueryPool(workers=1)
        pool.close()
        with pytest.raises(ServeError):
            pool.run(lambda: None)
        pool.close()  # idempotent
