"""Unit tests for the scenario registry and builders (Tab. 7)."""

import pytest

from repro.core.treepattern.parser import parse_pattern
from repro.engine.session import Session
from repro.errors import WorkloadError
from repro.workloads.scenarios import (
    DBLP_SCENARIOS,
    SCENARIOS,
    TWITTER_SCENARIOS,
    load_workload,
    scenario,
)


class TestRegistry:
    def test_registered_scenarios(self):
        assert len(SCENARIOS) == 12
        # The GDPR audit (G prefix) and streaming (S prefix) scenarios stay
        # out of the paper's T/D evaluation tables.
        assert TWITTER_SCENARIOS == ("T1", "T2", "T3", "T4", "T5")
        assert DBLP_SCENARIOS == ("D1", "D2", "D3", "D4", "D5")
        assert scenario("G1").kind == "twitter"

    def test_lookup(self):
        assert scenario("T3").description == "running example"
        with pytest.raises(WorkloadError, match="unknown scenario"):
            scenario("T9")

    def test_patterns_parse(self):
        for spec in SCENARIOS.values():
            parse_pattern(spec.pattern)

    def test_load_workload_memoises(self):
        first = load_workload("twitter", 0.05)
        second = load_workload("twitter", 0.05)
        assert first is second

    def test_load_workload_unknown_kind(self):
        with pytest.raises(WorkloadError):
            load_workload("movies", 1.0)


@pytest.mark.parametrize("name", sorted(SCENARIOS))
class TestScenarioExecution:
    def test_builds_and_runs(self, name):
        spec = scenario(name)
        dataset = spec.instantiate(scale=0.2, num_partitions=2)
        items = dataset.collect()
        assert items, f"scenario {name} produced no result at scale 0.2"

    def test_pattern_matches_result(self, name):
        """Every scenario's structural query has matches (sentinel values)."""
        spec = scenario(name)
        dataset = spec.instantiate(scale=0.2, num_partitions=2)
        execution = dataset.execute(capture=True)
        from repro.core.treepattern.matcher import match_partitions

        matches = match_partitions(parse_pattern(spec.pattern), execution.partitions)
        assert matches, f"pattern of {name} matched nothing"

    def test_capture_does_not_change_result(self, name):
        spec = scenario(name)
        data = load_workload(spec.kind, 0.2)
        plain = spec.build(Session(2), data).execute(capture=False)
        captured = spec.build(Session(2), data).execute(capture=True)
        assert sorted(map(repr, plain.items())) == sorted(map(repr, captured.items()))
