"""Unit tests for the synthetic Twitter and DBLP workload generators."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.dblp import DblpConfig, generate_dblp
from repro.workloads.twitter import TwitterConfig, generate_tweets


class TestTwitterGenerator:
    def test_deterministic(self):
        assert generate_tweets(scale=0.1) == generate_tweets(scale=0.1)

    def test_seed_changes_output(self):
        assert generate_tweets(scale=0.1, seed=1) != generate_tweets(scale=0.1, seed=2)

    def test_scale_controls_count(self):
        small = generate_tweets(TwitterConfig(scale=0.5))
        large = generate_tweets(TwitterConfig(scale=1.0))
        assert len(large) == 2 * len(small) == TwitterConfig.BASE_TWEETS

    def test_sentinels_present(self):
        tweets = generate_tweets(scale=0.05)
        first = tweets[0]
        assert first["user"]["id_str"] == "u1"
        assert "good" in first["text"] and "BTS" in first["text"]
        assert first["retweet_count"] == 0
        assert any(
            mention["id_str"] == "u1"
            for tweet in tweets
            for mention in tweet["user_mentions"]
        )
        assert any(
            tag["text"] == "pebble" for tweet in tweets for tag in tweet["hashtags"]
        )

    def test_nesting_depth_reaches_eight(self):
        tweet = generate_tweets(scale=0.05)[0]
        # tweet -> payload -> group_0 -> entries -> [0] -> meta -> flags -> [0]
        flags = tweet["payload"]["group_0"]["entries"][0]["meta"]["flags"]
        assert isinstance(flags[0], int)

    def test_payload_width_configurable(self):
        narrow = generate_tweets(scale=0.02, payload_width=0)
        assert narrow[0]["payload"] == {}
        wide = generate_tweets(scale=0.02, payload_width=8)
        entry_count = sum(
            len(group["entries"]) for group in wide[0]["payload"].values()
        )
        assert entry_count == 8

    def test_invalid_scale_rejected(self):
        with pytest.raises(WorkloadError):
            TwitterConfig(scale=0)

    def test_config_and_kwargs_exclusive(self):
        with pytest.raises(WorkloadError):
            generate_tweets(TwitterConfig(), scale=1.0)

    def test_mentions_reference_user_pool(self):
        tweets = generate_tweets(scale=0.1)
        user_ids = {tweet["user"]["id_str"] for tweet in tweets}
        mention_ids = {
            mention["id_str"] for tweet in tweets for mention in tweet["user_mentions"]
        }
        assert mention_ids <= user_ids | {"u1"} | mention_ids  # mentions come from the pool
        assert all(identifier.startswith("u") for identifier in mention_ids)


class TestDblpGenerator:
    def test_deterministic(self):
        assert generate_dblp(scale=0.1) == generate_dblp(scale=0.1)

    def test_collections_present(self):
        data = generate_dblp(scale=0.1)
        assert set(data) == {"proceedings", "inproceedings", "articles", "persons"}

    def test_sentinels(self):
        data = generate_dblp(scale=0.05)
        assert data["proceedings"][0]["key"] == "conf/pebble/2015"
        sentinel = data["inproceedings"][0]
        assert sentinel["title"] == "Structural Provenance for Nested Data"
        assert sentinel["crossref"] == "conf/pebble/2015"
        assert "Ralf Diestel" in sentinel["authors"]
        assert data["persons"][0]["name"] == "Ralf Diestel"
        assert data["articles"][0]["key"] == "journals/vldbj/Sentinel2015"

    def test_crossrefs_resolve(self):
        data = generate_dblp(scale=0.2)
        keys = {record["key"] for record in data["proceedings"]}
        assert all(record["crossref"] in keys for record in data["inproceedings"])

    def test_papers_per_proceeding_preserved(self):
        config = DblpConfig(scale=1.0)
        ratio = config.inproceedings_count / config.proceedings_count
        assert ratio == pytest.approx(DblpConfig.PAPERS_PER_PROCEEDING, rel=0.2)

    def test_authors_come_from_person_pool(self):
        data = generate_dblp(scale=0.2)
        names = {person["name"] for person in data["persons"]}
        assert all(
            author in names
            for record in data["inproceedings"]
            for author in record["authors"]
        )

    def test_scale_controls_count(self):
        small = generate_dblp(DblpConfig(scale=0.5))
        large = generate_dblp(DblpConfig(scale=1.0))
        assert len(large["inproceedings"]) == 2 * len(small["inproceedings"])

    def test_invalid_scale_rejected(self):
        with pytest.raises(WorkloadError):
            DblpConfig(scale=-1)
