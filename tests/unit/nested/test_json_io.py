"""Unit tests for JSON / JSONL (de)serialisation."""

import pytest

from repro.errors import DataModelError
from repro.nested.json_io import (
    item_from_json,
    item_to_json,
    items_from_jsonl,
    items_to_jsonl,
    read_jsonl,
    write_jsonl,
)
from repro.nested.values import Bag, DataItem


class TestJson:
    def test_parse_object(self):
        item = item_from_json('{"a": 1, "b": [1, 2]}')
        assert item["a"] == 1
        assert isinstance(item["b"], Bag)

    def test_parse_non_object_rejected(self):
        with pytest.raises(DataModelError, match="must be an object"):
            item_from_json("[1, 2]")

    def test_roundtrip(self):
        raw = {"text": "hi", "user": {"id_str": "lp"}, "tags": ["a", "b"], "n": None}
        item = DataItem(raw)
        assert item_from_json(item_to_json(item)) == item

    def test_unicode_preserved(self):
        item = DataItem(text="héllo ümläut")
        assert item_from_json(item_to_json(item)) == item


class TestJsonl:
    def test_blank_lines_skipped(self):
        items = list(items_from_jsonl(['{"a": 1}', "", "   ", '{"a": 2}']))
        assert [item["a"] for item in items] == [1, 2]

    def test_lines_roundtrip(self):
        items = [DataItem(a=1), DataItem(a=2, b={"c": [3]})]
        lines = list(items_to_jsonl(items))
        assert list(items_from_jsonl(lines)) == items

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "data.jsonl"
        items = [DataItem(a=index) for index in range(5)]
        count = write_jsonl(path, items)
        assert count == 5
        assert read_jsonl(path) == items

    def test_read_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_jsonl(tmp_path / "missing.jsonl")
