"""Unit tests for schemas and schema-level path enumeration."""

import pytest

from repro.core.paths import parse_path
from repro.errors import PathEvaluationError, TypeInferenceError
from repro.nested.schema import Schema, infer_schema
from repro.nested.types import BagType, INT, STRING, StructType
from repro.nested.values import DataItem


@pytest.fixture
def tweet_schema() -> Schema:
    return Schema(
        StructType(
            [
                ("text", STRING),
                ("user", StructType([("id_str", STRING), ("name", STRING)])),
                (
                    "user_mentions",
                    BagType(StructType([("id_str", STRING), ("name", STRING)])),
                ),
                ("retweet_count", INT),
            ]
        )
    )


class TestResolve:
    def test_top_level(self, tweet_schema):
        assert tweet_schema.resolve(parse_path("text")) == STRING

    def test_nested_struct(self, tweet_schema):
        assert tweet_schema.resolve(parse_path("user.id_str")) == STRING

    def test_placeholder_into_collection(self, tweet_schema):
        assert tweet_schema.resolve(parse_path("user_mentions[pos].name")) == STRING

    def test_concrete_position_into_collection(self, tweet_schema):
        assert tweet_schema.resolve(parse_path("user_mentions[2].id_str")) == STRING

    def test_missing_attribute(self, tweet_schema):
        with pytest.raises(PathEvaluationError, match="no attribute"):
            tweet_schema.resolve(parse_path("missing"))

    def test_position_on_non_collection(self, tweet_schema):
        with pytest.raises(PathEvaluationError, match="non-collection"):
            tweet_schema.resolve(parse_path("user[1]"))

    def test_descend_into_primitive(self, tweet_schema):
        with pytest.raises(PathEvaluationError, match="non-struct"):
            tweet_schema.resolve(parse_path("text.inner"))

    def test_contains(self, tweet_schema):
        assert tweet_schema.contains(parse_path("user.name"))
        assert not tweet_schema.contains(parse_path("user.missing"))

    def test_empty_path_resolves_to_struct(self, tweet_schema):
        assert tweet_schema.resolve(parse_path("")) == tweet_schema.struct


class TestPaths:
    def test_enumeration_includes_placeholder_paths(self, tweet_schema):
        rendered = {str(path) for path in tweet_schema.paths()}
        assert "user_mentions" in rendered
        assert "user_mentions[pos]" in rendered
        assert "user_mentions[pos].id_str" in rendered
        assert "user.name" in rendered

    def test_leaf_paths_exclude_containers(self, tweet_schema):
        rendered = {str(path) for path in tweet_schema.leaf_paths()}
        assert "user" not in rendered
        assert "user_mentions" not in rendered
        assert "user.id_str" in rendered
        assert "user_mentions[pos].name" in rendered

    def test_attribute_names(self, tweet_schema):
        assert tweet_schema.attribute_names() == (
            "text",
            "user",
            "user_mentions",
            "retweet_count",
        )


class TestInferSchema:
    def test_unifies_items(self):
        schema = infer_schema([DataItem(a=1), DataItem(a=2.5, b="x")])
        assert schema.resolve(parse_path("a")).name == "Double"
        assert schema.contains(parse_path("b"))

    def test_empty_iterable(self):
        schema = infer_schema([])
        assert schema.attribute_names() == ()

    def test_merged_with(self):
        left = infer_schema([DataItem(a=1)])
        right = infer_schema([DataItem(b="x")])
        merged = left.merged_with(right)
        assert merged.attribute_names() == ("a", "b")

    def test_merge_conflict_rejected(self):
        left = infer_schema([DataItem(a=1)])
        right = infer_schema([DataItem(a="x")])
        with pytest.raises(TypeInferenceError):
            left.merged_with(right)

    def test_schema_of_convenience(self):
        schema = Schema.of(a=INT, b=STRING)
        assert schema.attribute_names() == ("a", "b")

    def test_equality_and_hash(self):
        assert Schema.of(a=INT) == Schema.of(a=INT)
        assert hash(Schema.of(a=INT)) == hash(Schema.of(a=INT))
