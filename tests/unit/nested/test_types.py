"""Unit tests for the type system (paper Sec. 4.1, Tab. 4)."""

import pytest

from repro.errors import TypeInferenceError
from repro.nested.types import (
    BagType,
    BOOLEAN,
    DOUBLE,
    INT,
    NULL,
    SetType,
    STRING,
    StructType,
    check_same_type,
    infer_type,
    unify,
    unify_all,
)
from repro.nested.values import Bag, DataItem, NestedSet


class TestInference:
    @pytest.mark.parametrize(
        "value, expected",
        [
            (None, NULL),
            (True, BOOLEAN),
            (3, INT),
            (2.5, DOUBLE),
            ("x", STRING),
        ],
    )
    def test_constants(self, value, expected):
        assert infer_type(value) == expected

    def test_bool_is_not_int(self):
        # Python bools are ints; the model types them as Boolean.
        assert infer_type(True) == BOOLEAN

    def test_struct(self):
        item = DataItem(a=1, b="x")
        assert infer_type(item) == StructType([("a", INT), ("b", STRING)])

    def test_bag(self):
        assert infer_type(Bag([1, 2])) == BagType(INT)

    def test_set(self):
        assert infer_type(NestedSet(["a"])) == SetType(STRING)

    def test_empty_bag_is_null_element(self):
        assert infer_type(Bag([])) == BagType(NULL)

    def test_nested(self):
        item = DataItem(user=DataItem(id_str="lp"), tags=Bag(["a"]))
        expected = StructType(
            [("user", StructType([("id_str", STRING)])), ("tags", BagType(STRING))]
        )
        assert infer_type(item) == expected

    def test_heterogeneous_bag_rejected(self):
        with pytest.raises(TypeInferenceError):
            infer_type(Bag([1, "x"]))

    def test_unsupported_value_rejected(self):
        with pytest.raises(TypeInferenceError):
            infer_type(object())


class TestUnify:
    def test_identical(self):
        assert unify(INT, INT) == INT

    def test_null_unifies_with_anything(self):
        assert unify(NULL, STRING) == STRING
        assert unify(BagType(INT), NULL) == BagType(INT)

    def test_int_widens_to_double(self):
        assert unify(INT, DOUBLE) == DOUBLE
        assert unify(DOUBLE, INT) == DOUBLE

    def test_int_string_rejected(self):
        with pytest.raises(TypeInferenceError, match="cannot unify"):
            unify(INT, STRING)

    def test_struct_fieldwise(self):
        left = StructType([("a", INT)])
        right = StructType([("a", DOUBLE)])
        assert unify(left, right) == StructType([("a", DOUBLE)])

    def test_struct_missing_fields_become_nullable(self):
        left = StructType([("a", INT)])
        right = StructType([("b", STRING)])
        unified = unify(left, right)
        assert unified.field_type("a") == INT
        assert unified.field_type("b") == STRING

    def test_struct_field_order_left_first(self):
        left = StructType([("a", INT), ("c", INT)])
        right = StructType([("b", INT)])
        assert unify(left, right).field_names() == ("a", "c", "b")

    def test_collections_elementwise(self):
        assert unify(BagType(INT), BagType(DOUBLE)) == BagType(DOUBLE)
        assert unify(SetType(NULL), SetType(STRING)) == SetType(STRING)

    def test_bag_set_mismatch_rejected(self):
        with pytest.raises(TypeInferenceError):
            unify(BagType(INT), SetType(INT))

    def test_unify_all_empty_is_null(self):
        assert unify_all([]) == NULL

    def test_check_same_type(self):
        assert check_same_type([1, 2, None]) == INT

    def test_accepts(self):
        assert DOUBLE.accepts(INT)
        assert not INT.accepts(STRING)

    def test_struct_field_type_missing(self):
        with pytest.raises(TypeInferenceError, match="no field"):
            StructType([]).field_type("a")


class TestTypeRendering:
    def test_struct_str(self):
        assert str(StructType([("a", INT)])) == "<a: Int>"

    def test_bag_str(self):
        assert str(BagType(INT)) == "{{Int}}"

    def test_set_str(self):
        assert str(SetType(INT)) == "{Int}"

    def test_hashable(self):
        assert {StructType([("a", INT)]), StructType([("a", INT)])} == {
            StructType([("a", INT)])
        }
