"""Unit tests for the nested value model (paper Sec. 4.1)."""

import pytest

from repro.errors import DataModelError
from repro.nested.values import Bag, DataItem, NestedSet, coerce_value, is_constant, to_python


class TestDataItem:
    def test_construction_from_dict(self):
        item = DataItem({"a": 1, "b": "x"})
        assert item["a"] == 1
        assert item["b"] == "x"

    def test_construction_from_kwargs(self):
        item = DataItem(a=1, b=2)
        assert item.attributes() == ("a", "b")

    def test_construction_from_pairs(self):
        item = DataItem([("b", 2), ("a", 1)])
        assert item.attributes() == ("b", "a")

    def test_attribute_order_preserved(self):
        item = DataItem({"z": 1, "a": 2, "m": 3})
        assert item.attributes() == ("z", "a", "m")

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(DataModelError, match="duplicate attribute"):
            DataItem([("a", 1), ("a", 2)])

    def test_empty_attribute_name_rejected(self):
        with pytest.raises(DataModelError):
            DataItem({"": 1})

    def test_non_string_attribute_rejected(self):
        with pytest.raises(DataModelError):
            DataItem([(1, "x")])

    def test_nested_dict_coerced(self):
        item = DataItem({"user": {"id_str": "lp"}})
        assert isinstance(item["user"], DataItem)

    def test_nested_list_coerced_to_bag(self):
        item = DataItem({"tags": [1, 2, 3]})
        assert isinstance(item["tags"], Bag)

    def test_get_with_default(self):
        item = DataItem(a=1)
        assert item.get("a") == 1
        assert item.get("missing") is None
        assert item.get("missing", 42) == 42

    def test_getitem_missing_raises_keyerror(self):
        with pytest.raises(KeyError, match="no attribute 'missing'"):
            DataItem(a=1)["missing"]

    def test_contains(self):
        item = DataItem(a=1)
        assert "a" in item
        assert "b" not in item

    def test_replace_existing(self):
        item = DataItem(a=1, b=2)
        updated = item.replace(a=10)
        assert updated["a"] == 10
        assert item["a"] == 1  # original unchanged

    def test_replace_appends_new_attribute(self):
        updated = DataItem(a=1).replace(b=2)
        assert updated.attributes() == ("a", "b")

    def test_without(self):
        item = DataItem(a=1, b=2, c=3)
        assert item.without("b").attributes() == ("a", "c")

    def test_project(self):
        item = DataItem(a=1, b=2, c=3)
        assert item.project(["c", "a"]).attributes() == ("c", "a")

    def test_merged_with(self):
        merged = DataItem(a=1).merged_with(DataItem(b=2))
        assert merged.attributes() == ("a", "b")

    def test_merged_with_overwrites(self):
        merged = DataItem(a=1).merged_with(DataItem(a=9))
        assert merged["a"] == 9

    def test_equality_and_hash(self):
        left = DataItem({"a": 1, "b": [1, 2]})
        right = DataItem({"a": 1, "b": [1, 2]})
        assert left == right
        assert hash(left) == hash(right)

    def test_inequality_on_order(self):
        assert DataItem([("a", 1), ("b", 2)]) != DataItem([("b", 2), ("a", 1)])

    def test_to_python_roundtrip(self):
        raw = {"a": 1, "b": {"c": [1, {"d": "x"}]}}
        assert DataItem(raw).to_python() == raw

    def test_len_and_iter(self):
        item = DataItem(a=1, b=2)
        assert len(item) == 2
        assert list(item) == ["a", "b"]

    def test_repr(self):
        assert repr(DataItem(a=1)) == "<a: 1>"


class TestBag:
    def test_positional_access_is_one_based(self):
        bag = Bag(["x", "y", "z"])
        assert bag.at(1) == "x"
        assert bag.at(3) == "z"

    def test_python_indexing_is_zero_based(self):
        bag = Bag(["x", "y"])
        assert bag[0] == "x"

    def test_at_zero_rejected(self):
        with pytest.raises(DataModelError, match="1-based"):
            Bag(["x"]).at(0)

    def test_at_out_of_range(self):
        with pytest.raises(DataModelError, match="out of range"):
            Bag(["x"]).at(2)

    def test_at_bool_rejected(self):
        with pytest.raises(DataModelError):
            Bag(["x"]).at(True)

    def test_duplicates_preserved(self):
        bag = Bag([1, 1, 2])
        assert len(bag) == 3

    def test_appended(self):
        bag = Bag([1]).appended(2)
        assert bag.items() == (1, 2)

    def test_concat(self):
        assert Bag([1]).concat(Bag([2, 3])).items() == (1, 2, 3)

    def test_elements_coerced(self):
        bag = Bag([{"a": 1}])
        assert isinstance(bag.at(1), DataItem)

    def test_equality_and_hash(self):
        assert Bag([1, 2]) == Bag([1, 2])
        assert hash(Bag([1, 2])) == hash(Bag([1, 2]))

    def test_bag_not_equal_to_set(self):
        assert Bag([1]) != NestedSet([1])

    def test_repr_uses_double_braces(self):
        assert repr(Bag([1])) == "{{1}}"


class TestNestedSet:
    def test_deduplicates_keeping_first(self):
        nested = NestedSet([3, 1, 3, 2, 1])
        assert nested.items() == (3, 1, 2)

    def test_deduplicates_nested_items(self):
        nested = NestedSet([{"a": 1}, {"a": 1}, {"a": 2}])
        assert len(nested) == 2

    def test_positional_access(self):
        assert NestedSet(["x", "y"]).at(2) == "y"

    def test_repr_uses_single_braces(self):
        assert repr(NestedSet([1])) == "{1}"


class TestCoercion:
    def test_constants_pass_through(self):
        for value in (1, 1.5, "x", True, None):
            assert coerce_value(value) == value

    def test_is_constant(self):
        assert is_constant(None)
        assert is_constant(3.14)
        assert not is_constant([1])

    def test_set_coerced_deterministically(self):
        coerced = coerce_value({3, 1, 2})
        assert isinstance(coerced, NestedSet)
        assert coerced == coerce_value({2, 3, 1})

    def test_unsupported_type_rejected(self):
        with pytest.raises(DataModelError, match="does not fit"):
            coerce_value(object())

    def test_to_python_on_constants(self):
        assert to_python(5) == 5

    def test_tuple_coerced_to_bag(self):
        assert isinstance(coerce_value((1, 2)), Bag)
