"""Unit tests for the provenance store."""

import pytest

from repro.core.operator_provenance import (
    FlattenAssociations,
    InputRef,
    OperatorProvenance,
    ReadAssociations,
    UnaryAssociations,
)
from repro.core.store import ProvenanceStore
from repro.errors import BacktraceError, ProvenanceError
from repro.nested.values import DataItem


def _read_op(oid=1):
    return OperatorProvenance(oid, "read", (), (), ReadAssociations([1, 2]))


def _filter_op(oid=2, pred=1):
    return OperatorProvenance(
        oid, "filter", (InputRef(pred, []),), (), UnaryAssociations([(1, 3)])
    )


class TestRegistration:
    def test_register_and_get(self):
        store = ProvenanceStore()
        store.register(_read_op())
        assert store.get(1).op_type == "read"

    def test_double_registration_rejected(self):
        store = ProvenanceStore()
        store.register(_read_op())
        with pytest.raises(ProvenanceError, match="twice"):
            store.register(_read_op())

    def test_get_missing_raises(self):
        with pytest.raises(BacktraceError, match="no captured provenance"):
            ProvenanceStore().get(9)

    def test_has(self):
        store = ProvenanceStore()
        store.register(_read_op())
        assert store.has(1)
        assert not store.has(2)

    def test_is_source(self):
        store = ProvenanceStore()
        store.register(_read_op(1))
        store.register(_filter_op(2))
        assert store.is_source(1)
        assert not store.is_source(2)

    def test_clear(self):
        store = ProvenanceStore()
        store.register(_read_op())
        store.clear()
        assert len(store) == 0


class TestSourceItems:
    def test_resolution(self):
        store = ProvenanceStore()
        store.register(_read_op())
        item = DataItem(a=1)
        store.register_source_items(1, "tweets.json", {1: item})
        assert store.source_name(1) == "tweets.json"
        assert store.source_item(1, 1) is item
        assert store.source_items(1) == {1: item}

    def test_missing_item_raises(self):
        store = ProvenanceStore()
        store.register(_read_op())
        store.register_source_items(1, "x", {})
        with pytest.raises(BacktraceError, match="no item"):
            store.source_item(1, 99)

    def test_unknown_source_name_fallback(self):
        assert ProvenanceStore().source_name(7) == "source-7"


class TestSizeReport:
    def test_split_and_totals(self):
        store = ProvenanceStore()
        store.register(_read_op(1))
        flatten = OperatorProvenance(
            2,
            "flatten",
            (InputRef(1, []),),
            (),
            FlattenAssociations([(1, 1, 3), (1, 2, 4)]),
        )
        store.register(flatten)
        report = store.size_report()
        assert report.lineage_bytes == 2 * 8 + 2 * 2 * 8
        assert report.structural_bytes == 2 * 4
        assert report.total_bytes == report.lineage_bytes + report.structural_bytes
        assert report.association_count == 4
        assert set(report.per_operator) == {1, 2}

    def test_serialize_is_deterministic_and_sized(self):
        store = ProvenanceStore()
        store.register(_read_op(1))
        store.register(_filter_op(2))
        blob = store.serialize()
        assert blob == store.serialize()
        assert len(blob) > 0
