"""The consistent-hash ring: determinism, bounded movement, failover order.

Placement decisions are made independently by warehouses recording runs,
routers placing queries, and CLIs inspecting both -- possibly in different
processes on different days.  These tests pin the two properties that make
that safe: the map is a pure function of (nodes, replicas, key), and
changing the node set only moves the keys it must.
"""

import json
import subprocess
import sys

import pytest

from repro.core.ring import DEFAULT_REPLICAS, HashRing, stable_hash
from repro.errors import ReproError

NODES = ["shard-00", "shard-01", "shard-02", "shard-03"]
KEYS = [f"run-{index:04d}-example" for index in range(200)]


class TestDeterminism:
    def test_same_inputs_same_map(self):
        first = HashRing(NODES).assignments(KEYS)
        second = HashRing(list(NODES)).assignments(KEYS)
        assert first == second

    def test_node_order_is_irrelevant(self):
        assert HashRing(NODES).assignments(KEYS) == HashRing(
            list(reversed(NODES))
        ).assignments(KEYS)

    def test_duplicate_nodes_collapse(self):
        assert HashRing(NODES + NODES).assignments(KEYS) == HashRing(
            NODES
        ).assignments(KEYS)

    def test_stable_hash_is_not_builtin_hash(self):
        # SHA-1 based: a fixed value pins the function forever.
        assert stable_hash("run-0001-example") == int.from_bytes(
            __import__("hashlib").sha1(b"run-0001-example").digest()[:8], "big"
        )

    def test_assignment_pinned_across_subprocesses(self):
        """Fresh interpreters with different hash seeds agree on placement --
        the property ``hash()``-based placement would violate."""
        script = (
            "import json, sys\n"
            "sys.path.insert(0, 'src')\n"
            "from repro.core.ring import HashRing\n"
            f"ring = HashRing({NODES!r})\n"
            f"print(json.dumps([ring.assign(key) for key in {KEYS[:50]!r}]))\n"
        )
        outputs = []
        for seed in ("0", "1", "12345"):
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                check=True,
                env={"PYTHONHASHSEED": seed, "PYTHONPATH": "src"},
                cwd=".",
            )
            outputs.append(json.loads(result.stdout))
        assert outputs[0] == outputs[1] == outputs[2]
        ring = HashRing(NODES)
        assert outputs[0] == [ring.assign(key) for key in KEYS[:50]]


class TestBoundedMovement:
    def test_adding_a_node_only_moves_keys_onto_it(self):
        before = HashRing(NODES).assignments(KEYS)
        after = HashRing(NODES + ["shard-04"]).assignments(KEYS)
        moved = {key for key in KEYS if before[key] != after[key]}
        # Points are only added, so every displaced key lands on the newcomer.
        assert all(after[key] == "shard-04" for key in moved)
        # In expectation |keys|/|nodes| move; allow generous slack.
        assert len(moved) <= len(KEYS) // 2

    def test_removing_a_node_only_moves_its_keys(self):
        before = HashRing(NODES).assignments(KEYS)
        after = HashRing(NODES[:-1]).assignments(KEYS)
        for key in KEYS:
            if before[key] != NODES[-1]:
                assert after[key] == before[key]

    def test_every_node_gets_a_fair_share(self):
        counts = {node: 0 for node in NODES}
        for owner in HashRing(NODES).assignments(KEYS).values():
            counts[owner] += 1
        assert all(count > 0 for count in counts.values())
        # 64 virtual points per node keep skew within a small factor.
        assert max(counts.values()) <= 4 * min(counts.values())


class TestPreference:
    def test_head_of_chain_is_the_owner(self):
        ring = HashRing(NODES)
        for key in KEYS[:20]:
            chain = ring.preference(key)
            assert chain[0] == ring.assign(key)
            assert sorted(chain) == sorted(NODES)  # distinct, complete

    def test_count_truncates(self):
        ring = HashRing(NODES)
        assert len(ring.preference("run-0001", 2)) == 2
        assert len(ring.preference("run-0001", 99)) == len(NODES)

    def test_chain_is_deterministic(self):
        assert HashRing(NODES).preference("k") == HashRing(NODES).preference("k")


class TestValidation:
    def test_no_nodes_rejected(self):
        with pytest.raises(ReproError):
            HashRing([])

    def test_bad_replicas_rejected(self):
        with pytest.raises(ReproError):
            HashRing(NODES, replicas=0)

    def test_default_replicas(self):
        assert HashRing(NODES).replicas == DEFAULT_REPLICAS
        assert len(HashRing(NODES)._points) == DEFAULT_REPLICAS * len(NODES)
