"""Unit tests for the lightweight operator provenance (Def. 5.1, Tab. 6)."""

import pytest

from repro.core.operator_provenance import (
    AggregationAssociations,
    BinaryAssociations,
    FlattenAssociations,
    InputRef,
    OperatorProvenance,
    ReadAssociations,
    UNDEFINED,
    UnaryAssociations,
)
from repro.core.paths import parse_path
from repro.errors import ProvenanceError


class TestAssociations:
    def test_unary_records(self):
        associations = UnaryAssociations()
        associations.add(1, 10)
        associations.add(2, 11)
        assert len(associations) == 2
        assert list(associations.output_ids()) == [10, 11]
        assert associations.lineage_bytes() == 2 * 2 * 8

    def test_binary_union_side_undefined(self):
        associations = BinaryAssociations()
        associations.add(1, None, 10)
        associations.add(None, 2, 11)
        assert associations.records[0] == (1, None, 10)
        assert list(associations.output_ids()) == [10, 11]

    def test_flatten_positions_are_structural_extra(self):
        associations = FlattenAssociations()
        associations.add(1, 1, 10)
        associations.add(1, 2, 11)
        assert associations.lineage_bytes() == 2 * 2 * 8
        assert associations.structural_extra_bytes() == 2 * 4

    def test_aggregation_counts_all_input_ids(self):
        associations = AggregationAssociations()
        associations.add([1, 2, 3], 10)
        associations.add([4], 11)
        assert associations.total_input_ids() == 4
        assert associations.lineage_bytes() == (4 + 2) * 8

    def test_read_ids(self):
        associations = ReadAssociations()
        associations.add(1)
        associations.add(2)
        assert list(associations.output_ids()) == [1, 2]
        assert associations.lineage_bytes() == 16


class TestInputRef:
    def test_accessed_paths_frozen(self):
        ref = InputRef(3, [parse_path("a"), parse_path("a")])
        assert ref.accessed == frozenset({parse_path("a")})

    def test_undefined_access(self):
        ref = InputRef(3, UNDEFINED)
        assert ref.accessed is UNDEFINED
        assert ref.accessed_or_empty() == frozenset()

    def test_undefined_is_falsy_singleton(self):
        assert not UNDEFINED
        assert UNDEFINED is type(UNDEFINED)()


class TestOperatorProvenance:
    def _make(self, manipulations=()):
        return OperatorProvenance(
            5,
            "select",
            (InputRef(4, [parse_path("user.id_str")]),),
            manipulations,
            UnaryAssociations([(1, 10)]),
        )

    def test_input_lookup(self):
        provenance = self._make()
        assert provenance.input(0).predecessor == 4
        with pytest.raises(ProvenanceError):
            provenance.input(1)

    def test_manipulations_undefined(self):
        provenance = OperatorProvenance(
            5, "map", (InputRef(4, UNDEFINED),), UNDEFINED, UnaryAssociations()
        )
        assert provenance.manipulations_undefined()
        assert provenance.manipulations_or_empty() == ()

    def test_manipulations_defined(self):
        pair = (parse_path("user.id_str"), parse_path("id_str"))
        provenance = self._make([pair])
        assert not provenance.manipulations_undefined()
        assert provenance.manipulations_or_empty() == (pair,)

    def test_structural_bytes_count_path_strings(self):
        pair = (parse_path("user.id_str"), parse_path("id_str"))
        provenance = self._make([pair])
        expected = len("user.id_str") + len("user.id_str") + len("id_str")
        assert provenance.structural_extra_bytes() == expected

    def test_total_bytes(self):
        provenance = self._make()
        assert provenance.total_bytes() == provenance.lineage_bytes() + provenance.structural_extra_bytes()

    def test_default_label(self):
        assert self._make().label == "select"
