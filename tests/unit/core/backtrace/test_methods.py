"""Unit tests for manipulatePath / accessPath / mergeTrees (Sec. 6.2)."""

from repro.core.backtrace.methods import (
    access_path,
    manipulate_paths,
    merge_trees,
    prune_output_residue,
    remove_sibling_positions,
)
from repro.core.backtrace.tree import BacktraceTree
from repro.core.paths import POS, parse_path
from repro.nested.schema import Schema
from repro.nested.types import BagType, STRING, StructType


def _tree(*paths, contributing=True):
    tree = BacktraceTree()
    for path in paths:
        tree.ensure_path(parse_path(path), contributing)
    return tree


class TestManipulatePaths:
    def test_select_projection_undone(self):
        """Select op 3: ``user.id_str -> id_str`` moves id_str back under user."""
        tree = _tree("id_str")
        matched = manipulate_paths(
            tree, [(parse_path("user.id_str"), parse_path("id_str"))], oid=3
        )
        assert matched
        assert tree.find(parse_path("id_str")) is None
        node = tree.find(parse_path("user.id_str"))
        assert node is not None and node.manipulation == {3}

    def test_unmatched_pair_skipped(self):
        tree = _tree("other")
        matched = manipulate_paths(tree, [(parse_path("a"), parse_path("b"))], oid=1)
        assert not matched
        assert tree.find(parse_path("other")) is not None

    def test_identity_pair_marks_without_moving(self):
        tree = _tree("text")
        matched = manipulate_paths(tree, [(parse_path("text"), parse_path("text"))], oid=7)
        assert matched
        assert tree.find(parse_path("text")).manipulation == {7}

    def test_swap_is_safe(self):
        """Two-phase detach/graft survives a -> b plus b -> a renamings."""
        tree = _tree("a", "b")
        tree.find(parse_path("a")).access.add(1)
        tree.find(parse_path("b")).access.add(2)
        manipulate_paths(
            tree,
            [(parse_path("b"), parse_path("a")), (parse_path("a"), parse_path("b"))],
            oid=5,
        )
        assert tree.find(parse_path("a")).access == {2}
        assert tree.find(parse_path("b")).access == {1}

    def test_flatten_pair_creates_placeholder(self):
        """Flatten: ``user_mentions[pos] -> m_user`` (Ex. 6.5)."""
        tree = _tree("m_user.id_str")
        manipulate_paths(
            tree,
            [(parse_path("user_mentions[pos]"), parse_path("m_user"))],
            oid=5,
        )
        mentions = tree.find(parse_path("user_mentions"))
        assert mentions is not None
        assert POS in mentions.children
        assert tree.find(parse_path("user_mentions[pos].id_str")) is not None

    def test_queried_leaf_expands_through_output_path(self):
        """A queried leaf stands for its whole subtree: tweet -> tweet.text."""
        tree = _tree("tweet")
        matched = manipulate_paths(
            tree, [(parse_path("text"), parse_path("tweet.text"))], oid=8
        )
        assert matched
        assert tree.find(parse_path("text")) is not None

    def test_no_expansion_through_nonleaf(self):
        tree = _tree("tweet.other")
        matched = manipulate_paths(
            tree, [(parse_path("text"), parse_path("tweet.text"))], oid=8
        )
        assert not matched

    def test_moved_subtree_marks_descendants(self):
        tree = _tree("user.id_str", "user.name")
        manipulate_paths(tree, [(parse_path("u2"), parse_path("user"))], oid=8)
        assert tree.find(parse_path("u2.id_str")).manipulation == {8}
        assert tree.find(parse_path("u2.name")).manipulation == {8}


class TestPruneOutputResidue:
    def test_empty_output_attr_removed(self):
        tree = _tree("tweet")
        pairs = [(parse_path("text"), parse_path("tweet.text"))]
        manipulate_paths(tree, pairs, oid=8)
        prune_output_residue(tree, pairs)
        assert tree.find(parse_path("tweet")) is None

    def test_non_empty_output_attr_kept(self):
        tree = _tree("tweet.unrelated")
        pairs = [(parse_path("text"), parse_path("tweet.text"))]
        prune_output_residue(tree, pairs)
        assert tree.find(parse_path("tweet.unrelated")) is not None

    def test_identity_named_attr_not_pruned(self):
        tree = _tree("text")
        pairs = [(parse_path("text"), parse_path("text"))]
        manipulate_paths(tree, pairs, oid=3)
        prune_output_residue(tree, pairs)
        assert tree.find(parse_path("text")) is not None


class TestAccessPath:
    def test_existing_node_marked(self):
        tree = _tree("text")
        access_path(tree, parse_path("text"), oid=2)
        node = tree.find(parse_path("text"))
        assert node.access == {2}
        assert node.contributing

    def test_missing_node_created_as_influencing(self):
        tree = _tree("text")
        access_path(tree, parse_path("retweet_count"), oid=2)
        node = tree.find(parse_path("retweet_count"))
        assert node.access == {2}
        assert not node.contributing

    def test_struct_access_expands_children(self):
        """Example 6.6: grouping on ``user`` marks user *and its children*."""
        schema = Schema(
            StructType(
                [("user", StructType([("id_str", STRING), ("name", STRING)]))]
            )
        )
        tree = _tree("user.id_str")
        access_path(tree, parse_path("user"), oid=9, schema=schema)
        assert tree.find(parse_path("user")).access == {9}
        assert tree.find(parse_path("user.id_str")).access == {9}
        name = tree.find(parse_path("user.name"))
        assert name.access == {9}
        assert not name.contributing

    def test_placeholder_access_marks_existing_positions(self):
        tree = _tree("mentions[1].id_str", "mentions[3].id_str")
        access_path(tree, parse_path("mentions[pos]"), oid=5)
        assert tree.find(parse_path("mentions[1]")).access == {5}
        assert tree.find(parse_path("mentions[3]")).access == {5}

    def test_placeholder_access_creates_placeholder_when_absent(self):
        tree = _tree("text")
        access_path(tree, parse_path("mentions[pos]"), oid=5)
        mentions = tree.find(parse_path("mentions"))
        assert POS in mentions.children
        assert mentions.children[POS].access == {5}

    def test_collection_of_structs_expansion(self):
        schema = Schema(
            StructType(
                [("mentions", BagType(StructType([("id_str", STRING)])))]
            )
        )
        tree = _tree("other")
        access_path(tree, parse_path("mentions"), oid=4, schema=schema)
        assert tree.find(parse_path("mentions")).access == {4}


class TestMergeTrees:
    def test_substitutes_and_merges_by_id(self):
        """Ex. 6.5: two flattened rows of item 1 merge with positions 1, 2."""
        first = _tree("user_mentions[pos].id_str")
        second = _tree("user_mentions[pos].id_str")
        merged = merge_trees([(1, 1, first), (1, 2, second)])
        assert len(merged) == 1
        item_id, tree = merged[0]
        assert item_id == 1
        mentions = tree.find(parse_path("user_mentions"))
        assert set(mentions.children) == {1, 2}

    def test_distinct_ids_stay_separate(self):
        merged = merge_trees(
            [(1, 1, _tree("a[pos]")), (2, 1, _tree("a[pos]"))]
        )
        assert sorted(item_id for item_id, _ in merged) == [1, 2]

    def test_zero_position_keeps_placeholder(self):
        """Outer-flatten rows with empty collections carry pos=0."""
        merged = merge_trees([(1, 0, _tree("a[pos]"))])
        _, tree = merged[0]
        assert POS in tree.find(parse_path("a")).children


class TestRemoveSiblingPositions:
    def test_collection_node_removed(self):
        tree = _tree("tweets[2].text", "tweets[3].text")
        remove_sibling_positions(tree, parse_path("tweets"))
        assert tree.find(parse_path("tweets")) is None
