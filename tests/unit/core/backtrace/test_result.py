"""Unit tests for provenance result wrappers."""

import pytest

from repro.core.backtrace.result import ProvenanceEntry, ProvenanceResult, SourceResult
from repro.core.backtrace.tree import BacktraceTree
from repro.core.paths import parse_path
from repro.nested.values import DataItem


def _entry(item_id=1, contributing=("text",), influencing=("retweet_count",)):
    tree = BacktraceTree()
    for path in contributing:
        tree.ensure_path(parse_path(path), contributing=True)
    for path in influencing:
        node = tree.ensure_path(parse_path(path), contributing=False)
        node.access.add(2)
    return ProvenanceEntry(item_id, DataItem(text="hi", retweet_count=0), tree)


class TestProvenanceEntry:
    def test_contributing_paths(self):
        assert _entry().contributing_paths() == ["text"]

    def test_influencing_paths(self):
        assert _entry().influencing_paths() == ["retweet_count"]

    def test_positional_path_rendering(self):
        entry = _entry(contributing=("tweets[2].text",), influencing=())
        assert entry.contributing_paths() == ["tweets", "tweets[2]", "tweets[2].text"]

    def test_accessed_by(self):
        assert _entry().accessed_by() == {"retweet_count": [2]}

    def test_manipulated_by(self):
        entry = _entry()
        entry.tree.find(parse_path("text")).manipulation.add(3)
        assert entry.manipulated_by() == {"text": [3]}

    def test_render_has_header(self):
        assert _entry(item_id=42).render().startswith("id 42:")


class TestSourceResult:
    def _source(self):
        return SourceResult(1, "tweets.json", [_entry(3), _entry(1)])

    def test_ids_sorted(self):
        assert self._source().ids() == [1, 3]

    def test_iteration_sorted_by_id(self):
        assert [entry.item_id for entry in self._source()] == [1, 3]

    def test_entry_lookup(self):
        assert self._source().entry(3).item_id == 3
        with pytest.raises(KeyError):
            self._source().entry(9)

    def test_is_empty(self):
        assert SourceResult(1, "x", []).is_empty()
        assert not self._source().is_empty()


class TestProvenanceResult:
    def _result(self):
        return ProvenanceResult(
            [
                SourceResult(1, "tweets.json", [_entry(1)]),
                SourceResult(4, "tweets.json", [_entry(7)]),
                SourceResult(6, "users.json", []),
            ],
            matched_output_ids=[100],
        )

    def test_source_by_name_returns_first(self):
        assert self._result().source("tweets.json").oid == 1
        with pytest.raises(KeyError):
            self._result().source("missing")

    def test_all_ids_merges_same_name(self):
        assert self._result().all_ids() == {"tweets.json": [1, 7], "users.json": []}

    def test_lineage_ids(self):
        assert self._result().lineage_ids() == {1, 7}

    def test_render_marks_empty_sources(self):
        rendered = self._result().render()
        assert "(empty)" in rendered
        assert "== source tweets.json (operator 1) ==" in rendered
