"""Unit tests for backtracing trees and structures (Defs. 6.2, 6.3)."""

import pytest

from repro.core.backtrace.tree import BacktraceNode, BacktraceStructure, BacktraceTree
from repro.core.paths import POS, parse_path
from repro.errors import BacktraceError


class TestEnsureFind:
    def test_ensure_creates_chain(self):
        tree = BacktraceTree()
        node = tree.ensure_path(parse_path("user.id_str"), contributing=True)
        assert node.label == "id_str"
        assert tree.find(parse_path("user")) is not None

    def test_positions_become_child_nodes(self):
        tree = BacktraceTree()
        tree.ensure_path(parse_path("tweets[2].text"), contributing=True)
        tweets = tree.find(parse_path("tweets"))
        assert set(tweets.children) == {2}
        assert tree.find(parse_path("tweets[2].text")) is not None

    def test_placeholder_nodes(self):
        tree = BacktraceTree()
        tree.ensure_path(parse_path("mentions[pos].id_str"), contributing=True)
        mentions = tree.find(parse_path("mentions"))
        assert POS in mentions.children

    def test_find_missing_returns_none(self):
        assert BacktraceTree().find(parse_path("missing")) is None

    def test_contributing_upgraded_never_downgraded(self):
        tree = BacktraceTree()
        tree.ensure_path(parse_path("a"), contributing=False)
        assert not tree.find(parse_path("a")).contributing
        tree.ensure_path(parse_path("a"), contributing=True)
        assert tree.find(parse_path("a")).contributing
        tree.ensure_path(parse_path("a"), contributing=False)
        assert tree.find(parse_path("a")).contributing


class TestDetachGraft:
    def test_detach_returns_subtree(self):
        tree = BacktraceTree()
        tree.ensure_path(parse_path("user.name"), contributing=True)
        subtree = tree.detach(parse_path("user.name"))
        assert subtree.label == "name"
        assert tree.find(parse_path("user.name")) is None
        assert tree.find(parse_path("user")) is not None

    def test_detach_missing_returns_none(self):
        assert BacktraceTree().detach(parse_path("a.b")) is None

    def test_detach_root_rejected(self):
        with pytest.raises(BacktraceError):
            BacktraceTree().detach(parse_path(""))

    def test_graft_creates_scaffolding(self):
        tree = BacktraceTree()
        subtree = BacktraceNode("id_str", contributing=True)
        tree.graft(parse_path("user.id_str"), subtree)
        assert tree.find(parse_path("user")).contributing
        assert tree.find(parse_path("user.id_str")) is subtree

    def test_graft_merges_into_existing(self):
        tree = BacktraceTree()
        existing = tree.ensure_path(parse_path("user"), contributing=False)
        existing.access.add(1)
        incoming = BacktraceNode("user", contributing=True)
        incoming.manipulation.add(2)
        merged = tree.graft(parse_path("user"), incoming)
        assert merged is existing
        assert merged.contributing
        assert merged.access == {1}
        assert merged.manipulation == {2}

    def test_remove(self):
        tree = BacktraceTree()
        tree.ensure_path(parse_path("a.b"), contributing=True)
        tree.remove(parse_path("a.b"))
        assert tree.find(parse_path("a.b")) is None
        tree.remove(parse_path("never.there"))  # no-op


class TestCopyMerge:
    def test_copy_is_deep(self):
        tree = BacktraceTree()
        tree.ensure_path(parse_path("a.b"), contributing=True).access.add(1)
        clone = tree.copy()
        clone.find(parse_path("a.b")).access.add(2)
        assert tree.find(parse_path("a.b")).access == {1}

    def test_merge_unions_marks(self):
        left = BacktraceTree()
        left.ensure_path(parse_path("a"), contributing=False).access.add(1)
        right = BacktraceTree()
        right.ensure_path(parse_path("a"), contributing=True).manipulation.add(2)
        right.ensure_path(parse_path("b"), contributing=True)
        left.merge_from(right)
        node = left.find(parse_path("a"))
        assert node.contributing and node.access == {1} and node.manipulation == {2}
        assert left.find(parse_path("b")) is not None

    def test_mark_subtree_manipulated(self):
        tree = BacktraceTree()
        tree.ensure_path(parse_path("user.name"), contributing=True)
        tree.find(parse_path("user")).mark_subtree_manipulated(9)
        assert tree.find(parse_path("user")).manipulation == {9}
        assert tree.find(parse_path("user.name")).manipulation == {9}


class TestPlaceholders:
    def test_substitute_placeholders(self):
        tree = BacktraceTree()
        tree.ensure_path(parse_path("mentions[pos].id_str"), contributing=True)
        tree.substitute_placeholders(3)
        assert tree.find(parse_path("mentions[3].id_str")) is not None
        assert POS not in tree.find(parse_path("mentions")).children

    def test_substitute_merges_with_existing_position(self):
        tree = BacktraceTree()
        tree.ensure_path(parse_path("mentions[2].id_str"), contributing=False)
        tree.ensure_path(parse_path("mentions[pos].name"), contributing=True)
        tree.substitute_placeholders(2)
        node = tree.find(parse_path("mentions[2]"))
        assert set(node.children) == {"id_str", "name"}


class TestIntrospection:
    def test_paths_walk(self):
        tree = BacktraceTree()
        tree.ensure_path(parse_path("a.b"), contributing=True)
        labels = {labels for labels, _ in tree.paths()}
        assert labels == {("a",), ("a", "b")}

    def test_contributing_leaf_paths(self):
        tree = BacktraceTree()
        tree.ensure_path(parse_path("a.b"), contributing=True)
        tree.ensure_path(parse_path("c"), contributing=False)
        assert tree.contributing_leaf_paths() == [("a", "b")]

    def test_render_contains_flags_and_marks(self):
        tree = BacktraceTree()
        node = tree.ensure_path(parse_path("user.name"), contributing=False)
        node.access.add(9)
        node.manipulation.update({3, 8})
        rendered = tree.render()
        assert "name (influencing) [A=9; M=3,8]" in rendered

    def test_is_empty(self):
        tree = BacktraceTree()
        assert tree.is_empty()
        tree.ensure_path(parse_path("a"), contributing=True)
        assert not tree.is_empty()


class TestStructure:
    def test_add_merges_same_id(self):
        left = BacktraceTree()
        left.ensure_path(parse_path("a"), contributing=True)
        right = BacktraceTree()
        right.ensure_path(parse_path("b"), contributing=True)
        structure = BacktraceStructure([(1, left), (1, right)])
        assert len(structure) == 1
        merged = structure.tree(1)
        assert merged.find(parse_path("a")) and merged.find(parse_path("b"))

    def test_missing_id_raises(self):
        with pytest.raises(BacktraceError):
            BacktraceStructure().tree(5)

    def test_copy_independent(self):
        tree = BacktraceTree()
        tree.ensure_path(parse_path("a"), contributing=True)
        structure = BacktraceStructure([(1, tree)])
        clone = structure.copy()
        clone.tree(1).ensure_path(parse_path("b"), contributing=True)
        assert structure.tree(1).find(parse_path("b")) is None

    def test_merge_from(self):
        first = BacktraceStructure()
        tree = BacktraceTree()
        tree.ensure_path(parse_path("a"), contributing=True)
        second = BacktraceStructure([(2, tree)])
        first.merge_from(second)
        assert first.ids() == [2]
