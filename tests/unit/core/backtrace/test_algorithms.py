"""Per-operator backtracing tests (Algs. 1-4) over minimal pipelines."""

from repro.core.backtrace.algorithms import Backtracer
from repro.core.backtrace.tree import BacktraceStructure
from repro.core.paths import parse_path
from repro.core.treepattern.parser import parse_pattern
from repro.core.treepattern.matcher import match_partitions, seed_structure
from repro.engine.expressions import col, collect_list, count, struct_, sum_
from repro.engine.session import Session


def _backtrace(execution, pattern_text):
    pattern = parse_pattern(pattern_text)
    matches = match_partitions(pattern, execution.partitions)
    seeds = seed_structure(matches)
    return Backtracer(execution.store).backtrace(execution.root.oid, seeds)


def _single_source(sources, name=None):
    non_empty = [source for source in sources if not source.structure.is_empty()]
    assert len(non_empty) == 1, sources
    return non_empty[0]


class TestFilterBacktrace:
    def test_ids_and_access_marks(self):
        session = Session(2)
        data = [{"a": 1, "flag": True}, {"a": 2, "flag": False}, {"a": 3, "flag": True}]
        ds = session.create_dataset(data, "in").filter(col("flag") == True)  # noqa: E712
        execution = ds.execute(capture=True)
        sources = _backtrace(execution, "root{/a=3}")
        source = _single_source(sources)
        assert source.ids() == [3]
        tree = source.structure.tree(3)
        flag = tree.find(parse_path("flag"))
        assert flag is not None and not flag.contributing
        assert flag.access == {ds.plan.oid}

    def test_filtered_out_items_not_in_provenance(self):
        session = Session(2)
        ds = session.create_dataset([{"a": 1}, {"a": 2}], "in").filter(col("a") == 1)
        execution = ds.execute(capture=True)
        sources = _backtrace(execution, "root{/a=1}")
        assert _single_source(sources).ids() == [1]


class TestSelectBacktrace:
    def test_projection_moved_back(self):
        session = Session(2)
        data = [{"user": {"id_str": "lp", "name": "Lisa"}, "x": 1}]
        ds = session.create_dataset(data, "in").select(col("user.id_str"))
        execution = ds.execute(capture=True)
        source = _single_source(_backtrace(execution, 'root{/id_str="lp"}'))
        tree = source.structure.tree(1)
        assert tree.find(parse_path("user.id_str")) is not None
        assert tree.find(parse_path("id_str")) is None

    def test_struct_projection(self):
        session = Session(1)
        data = [{"a": 1, "b": 2}]
        ds = session.create_dataset(data, "in").select(
            struct_(a=col("a"), b=col("b")).alias("pair")
        )
        execution = ds.execute(capture=True)
        source = _single_source(_backtrace(execution, "root{/pair{/a=1}}"))
        tree = source.structure.tree(1)
        assert tree.find(parse_path("a")) is not None
        assert tree.find(parse_path("pair")) is None

    def test_computed_expression_maps_to_inputs(self):
        session = Session(1)
        ds = session.create_dataset([{"a": 2, "b": 3}], "in").select(
            (col("a") + col("b")).alias("total")
        )
        execution = ds.execute(capture=True)
        source = _single_source(_backtrace(execution, "root{/total=5}"))
        tree = source.structure.tree(1)
        assert tree.find(parse_path("a")) is not None
        assert tree.find(parse_path("b")) is not None


class TestMapBacktrace:
    def test_whole_input_schema_manipulated(self):
        session = Session(1)
        data = [{"a": 1, "nested": {"b": 2}}]
        ds = session.create_dataset(data, "in").map(
            lambda item: item.replace(c=item["a"] * 10), "times10"
        )
        execution = ds.execute(capture=True)
        source = _single_source(_backtrace(execution, "root{/c=10}"))
        tree = source.structure.tree(1)
        for path in ("a", "nested", "nested.b"):
            node = tree.find(parse_path(path))
            assert node is not None and node.contributing
            assert ds.plan.oid in node.manipulation


class TestFlattenBacktrace:
    def test_position_recorded(self):
        session = Session(2)
        data = [{"tags": ["x", "y", "z"]}, {"tags": ["y"]}]
        ds = session.create_dataset(data, "in").flatten("tags", "tag")
        execution = ds.execute(capture=True)
        source = _single_source(_backtrace(execution, 'root{/tag="z"}'))
        assert source.ids() == [1]
        tree = source.structure.tree(1)
        tags = tree.find(parse_path("tags"))
        assert set(tags.children) == {3}

    def test_merge_trees_same_input(self):
        session = Session(1)
        data = [{"tags": ["x", "y"]}]
        ds = session.create_dataset(data, "in").flatten("tags", "tag")
        execution = ds.execute(capture=True)
        # Pattern matching every output row: both positions merge into one id.
        source = _single_source(_backtrace(execution, "root{/tag}"))
        assert source.ids() == [1]
        tags = source.structure.tree(1).find(parse_path("tags"))
        assert set(tags.children) == {1, 2}

    def test_outer_flatten_keeps_empty_items(self):
        session = Session(1)
        data = [{"a": 1, "tags": []}]
        ds = session.create_dataset(data, "in").flatten("tags", "tag", outer=True)
        execution = ds.execute(capture=True)
        assert len(execution) == 1
        source = _single_source(_backtrace(execution, "root{/a=1}"))
        assert source.ids() == [1]


class TestUnionBacktrace:
    def test_sides_separated(self):
        session = Session(1)
        left = session.create_dataset([{"a": 1}], "left")
        right = session.create_dataset([{"a": 2}], "right")
        execution = left.union(right).execute(capture=True)
        sources = _backtrace(execution, "root{/a=2}")
        by_name = {source.name: source for source in sources}
        assert by_name["left"].ids() == []
        # Identifiers are global across reads: "left" got id 1, "right" id 2.
        assert by_name["right"].ids() == [2]


class TestJoinBacktrace:
    def test_both_sides_traced_with_pruned_trees(self):
        session = Session(2)
        left = session.create_dataset([{"k": 1, "l_val": "a"}, {"k": 2, "l_val": "b"}], "left")
        right = session.create_dataset([{"fk": 1, "r_val": "x"}], "right")
        execution = left.join(right, col("k") == col("fk")).execute(capture=True)
        sources = _backtrace(execution, 'root{/l_val="a", /r_val="x"}')
        by_name = {source.name: source for source in sources}
        assert by_name["left"].ids() == [1]
        assert by_name["right"].ids() == [3]  # ids are global across reads
        left_tree = by_name["left"].structure.tree(1)
        assert left_tree.find(parse_path("l_val")) is not None
        assert left_tree.find(parse_path("r_val")) is None  # pruned: other side
        key_node = left_tree.find(parse_path("k"))
        assert key_node is not None and key_node.access  # join key accessed

    def test_unjoined_rows_absent(self):
        session = Session(1)
        left = session.create_dataset([{"k": 1}, {"k": 9}], "left")
        right = session.create_dataset([{"fk": 1, "v": 5}], "right")
        execution = left.join(right, col("k") == col("fk")).execute(capture=True)
        sources = _backtrace(execution, "root{/v=5}")
        by_name = {source.name: source for source in sources}
        assert by_name["left"].ids() == [1]


class TestAggregationBacktrace:
    def _captured(self, session=None):
        session = session or Session(2)
        data = [
            {"grp": "g1", "val": 1, "label": "a"},
            {"grp": "g1", "val": 2, "label": "b"},
            {"grp": "g2", "val": 3, "label": "c"},
        ]
        ds = session.create_dataset(data, "in").group_by(col("grp")).agg(
            collect_list(col("label")).alias("labels"),
            sum_(col("val")).alias("total"),
            count().alias("n"),
        )
        return ds.execute(capture=True)

    def test_positional_query_keeps_only_matching_member(self):
        execution = self._captured()
        source = _single_source(_backtrace(execution, 'root{/grp="g1", /labels="b"}'))
        # "b" is the second member of group g1 -> only input id 2 remains.
        assert source.ids() == [2]

    def test_scalar_aggregate_keeps_all_members(self):
        execution = self._captured()
        source = _single_source(_backtrace(execution, 'root{/grp="g1", /total=3}'))
        assert source.ids() == [1, 2]
        tree = source.structure.tree(1)
        assert tree.find(parse_path("val")) is not None
        assert tree.find(parse_path("total")) is None

    def test_whole_collection_query_keeps_all_members(self):
        execution = self._captured()
        source = _single_source(_backtrace(execution, 'root{/grp="g2", /labels}'))
        assert source.ids() == [3]

    def test_key_only_query_yields_empty_provenance(self):
        """Alg. 4's strict inProv filter: key-only matches are removed."""
        execution = self._captured()
        sources = _backtrace(execution, 'root{/grp="g1"}')
        assert all(source.structure.is_empty() for source in sources)

    def test_group_key_marked_accessed(self):
        execution = self._captured()
        source = _single_source(_backtrace(execution, 'root{/grp="g1", /labels="a"}'))
        tree = source.structure.tree(1)
        grp = tree.find(parse_path("grp"))
        assert grp is not None and grp.access


class TestWholeDagBacktrace:
    def test_manual_seed_over_shared_source(self):
        """A diamond plan (one read consumed twice) visits the read once."""
        session = Session(1)
        base = session.create_dataset([{"a": 1}, {"a": 2}], "in")
        left = base.filter(col("a") == 1)
        right = base.filter(col("a") == 2)
        union = left.union(right)
        execution = union.execute(capture=True)
        sources = _backtrace(execution, "root{/a}")
        assert len(sources) == 1
        assert sources[0].ids() == [1, 2]

    def test_empty_seed_returns_empty_sources(self):
        session = Session(1)
        ds = session.create_dataset([{"a": 1}], "in").filter(col("a") == 1)
        execution = ds.execute(capture=True)
        sources = Backtracer(execution.store).backtrace(
            execution.root.oid, BacktraceStructure()
        )
        assert len(sources) == 1
        assert sources[0].structure.is_empty()
