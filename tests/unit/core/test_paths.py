"""Unit tests for access paths (paper Def. 4.3, Ex. 4.4)."""

import pytest

from repro.core.paths import POS, Path, Step, enumerate_paths, parse_path
from repro.errors import PathEvaluationError, PathSyntaxError
from repro.nested.values import Bag, DataItem


@pytest.fixture
def d102() -> DataItem:
    """The result item 102 of Tab. 2 (used in Ex. 4.4)."""
    return DataItem(
        {
            "user": {"id_str": "lp", "name": "Lisa Paul"},
            "tweets": [
                {"text": "Hello @ls @jm @ls"},
                {"text": "Hello World"},
                {"text": "Hello World"},
                {"text": "Hello @lp"},
            ],
        }
    )


class TestParsing:
    def test_simple(self):
        path = parse_path("user.id_str")
        assert [step.name for step in path] == ["user", "id_str"]

    def test_positions_one_based(self):
        path = parse_path("user_mentions[1].id_str")
        assert path.head().pos == 1

    def test_placeholder(self):
        path = parse_path("user_mentions[pos]")
        assert path.head().pos is POS

    def test_str_roundtrip(self):
        for text in ("a", "a.b.c", "a[3].b", "a[pos].b", "x-y.z_1"):
            assert str(parse_path(text)) == text

    def test_empty_string_is_empty_path(self):
        assert parse_path("").is_empty()

    def test_whitespace_tolerated(self):
        assert parse_path(" a . b ") == parse_path("a.b")

    @pytest.mark.parametrize("bad", ["a..b", "a[0]", "a[-1]", "1a", "a[", "a]b", ".a"])
    def test_invalid_rejected(self, bad):
        with pytest.raises(PathSyntaxError):
            parse_path(bad)

    def test_non_string_rejected(self):
        with pytest.raises(PathSyntaxError):
            parse_path(123)


class TestStep:
    def test_zero_position_rejected(self):
        with pytest.raises(PathSyntaxError):
            Step("a", 0)

    def test_without_pos(self):
        assert Step("a", 3).without_pos() == Step("a")

    def test_with_placeholder(self):
        assert Step("a", 3).with_placeholder() == Step("a", POS)
        assert Step("a").with_placeholder() == Step("a")

    def test_schematic_match(self):
        assert Step("a", 1).matches_schematically(Step("a", 2))
        assert not Step("a").matches_schematically(Step("b"))

    def test_hashable(self):
        assert len({Step("a", 1), Step("a", 1), Step("a", POS)}) == 2


class TestEvaluation:
    def test_attribute_path(self, d102):
        assert parse_path("user.id_str").evaluate(d102) == "lp"

    def test_positional_path_example_4_4(self, d102):
        tweets = parse_path("tweets").evaluate(d102)
        assert isinstance(tweets, Bag)
        assert len(tweets) == 4
        assert parse_path("tweets[2].text").evaluate(d102) == "Hello World"

    def test_missing_attribute_raises(self, d102):
        with pytest.raises(PathEvaluationError, match="no attribute"):
            parse_path("missing").evaluate(d102)

    def test_null_propagates(self):
        item = DataItem(user=None)
        assert parse_path("user.id_str").evaluate(item) is None

    def test_position_on_non_collection(self, d102):
        with pytest.raises(PathEvaluationError, match="non-collection"):
            parse_path("user[1]").evaluate(d102)

    def test_placeholder_cannot_evaluate(self, d102):
        with pytest.raises(PathEvaluationError, match="placeholder"):
            parse_path("tweets[pos].text").evaluate(d102)

    def test_attribute_of_constant(self, d102):
        with pytest.raises(PathEvaluationError, match="non-struct"):
            parse_path("user.id_str.deeper").evaluate(d102)

    def test_resolves_in(self, d102):
        assert parse_path("tweets[4]").resolves_in(d102)
        assert not parse_path("tweets[5]").resolves_in(d102)


class TestStructure:
    def test_prefix(self):
        assert parse_path("a.b.c").startswith(parse_path("a.b"))
        assert not parse_path("a.b").startswith(parse_path("a.b.c"))

    def test_prefix_respects_positions(self):
        assert not parse_path("a[1].b").startswith(parse_path("a[2]"))
        assert parse_path("a[1].b").startswith(parse_path("a[2]"), schematic=True)

    def test_replace_prefix(self):
        replaced = parse_path("m_user.id_str").replace_prefix(
            parse_path("m_user"), parse_path("user_mentions[1]")
        )
        assert str(replaced) == "user_mentions[1].id_str"

    def test_replace_prefix_requires_prefix(self):
        with pytest.raises(PathEvaluationError):
            parse_path("a.b").replace_prefix(parse_path("x"), parse_path("y"))

    def test_schematic_strips_positions(self):
        assert str(parse_path("a[3].b[pos].c").schematic()) == "a.b.c"

    def test_with_placeholders(self):
        assert str(parse_path("a[3].b").with_placeholders()) == "a[pos].b"

    def test_substitute_placeholder(self):
        substituted = parse_path("a[pos].b").substitute_placeholder(7)
        assert str(substituted) == "a[7].b"

    def test_substitute_without_placeholder_raises(self):
        with pytest.raises(PathEvaluationError):
            parse_path("a.b").substitute_placeholder(1)

    def test_substitute_only_first_placeholder(self):
        substituted = parse_path("a[pos].b[pos]").substitute_placeholder(2)
        assert str(substituted) == "a[2].b[pos]"

    def test_head_tail_last_parent(self):
        path = parse_path("a.b.c")
        assert path.head() == Step("a")
        assert str(path.tail()) == "b.c"
        assert path.last() == Step("c")
        assert str(path.parent()) == "a.b"

    def test_empty_path_head_raises(self):
        with pytest.raises(PathEvaluationError):
            Path().head()

    def test_child_and_concat(self):
        assert str(Path().child("a").child("b", 2)) == "a.b[2]"
        assert str(parse_path("a").concat(parse_path("b.c"))) == "a.b.c"

    def test_hashable(self):
        assert len({parse_path("a.b"), parse_path("a.b")}) == 1

    def test_of_builder(self):
        assert str(Path.of("user", "id_str")) == "user.id_str"


class TestEnumeratePaths:
    def test_enumerates_value_level_paths(self, d102):
        rendered = {str(path) for path in enumerate_paths(d102)}
        assert "user" in rendered
        assert "user.id_str" in rendered
        assert "tweets" in rendered
        assert "tweets[2]" in rendered
        assert "tweets[2].text" in rendered
        assert "tweets[5]" not in rendered

    def test_count_matches_structure(self, d102):
        # user, user.id_str, user.name, tweets, tweets[1..4], tweets[i].text
        assert len(enumerate_paths(d102)) == 3 + 1 + 4 + 4
