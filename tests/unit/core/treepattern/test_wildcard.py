"""Unit tests for wildcard (*) pattern nodes."""

from repro.core.treepattern.matcher import match_item
from repro.core.treepattern.parser import parse_pattern
from repro.core.treepattern.pattern import TreePattern, child, descendant
from repro.nested.values import DataItem


ITEM = DataItem(
    {
        "name": "Lisa",
        "card": "4111",
        "contact": {"email": "lisa@x", "backup": "4111"},
        "orders": [{"ref": "4111", "total": 9}],
    }
)


class TestWildcardMatching:
    def test_child_wildcard_matches_any_top_level(self):
        paths = match_item(parse_pattern('root{/*="4111"}'), ITEM)
        assert {str(path) for path in paths} == {"card"}

    def test_descendant_wildcard_matches_any_depth(self):
        paths = match_item(parse_pattern('root{//*="4111"}'), ITEM)
        assert {str(path) for path in paths} == {
            "card",
            "contact.backup",
            "orders[1].ref",
        }

    def test_wildcard_without_constraint_matches_everything(self):
        paths = match_item(parse_pattern("root{/*}"), ITEM)
        assert {str(path) for path in paths} == {"name", "card", "contact", "orders"}

    def test_wildcard_with_children(self):
        """Any attribute whose subtree holds an email field."""
        pattern = TreePattern.root(child("*", child("email", equals="lisa@x")))
        paths = match_item(pattern, ITEM)
        assert {str(path) for path in paths} == {"contact", "contact.email"}

    def test_wildcard_through_collection_elements(self):
        pattern = TreePattern.root(child("orders", child("*", equals=9)))
        paths = match_item(pattern, ITEM)
        assert {str(path) for path in paths} == {"orders", "orders[1].total"}

    def test_no_match_returns_none(self):
        assert match_item(parse_pattern('root{//*="nope"}'), ITEM) is None

    def test_render_roundtrip(self):
        pattern = parse_pattern('root{//*="4111"}')
        assert pattern.render() == 'root{//*="4111"}'
        assert parse_pattern(pattern.render()).render() == pattern.render()

    def test_builder(self):
        assert descendant("*", equals=1).render() == "*=1"


class TestWildcardAuditing:
    def test_find_leak_site_of_a_value(self, session):
        """The audit question: which inputs contain the leaked constant?"""
        from repro.engine.expressions import col
        from repro.pebble.query import query_provenance

        data = [
            {"who": "a", "payload": {"secret": "k-123"}},
            {"who": "b", "payload": {"secret": "other"}},
        ]
        ds = session.create_dataset(data, "records").select(
            col("who"), col("payload.secret").alias("secret")
        )
        execution = ds.execute(capture=True)
        provenance = query_provenance(execution, 'root{//*="k-123"}')
        [source] = provenance.sources
        assert source.ids() == [1]
        entry = source.entry(1)
        assert "payload.secret" in entry.contributing_paths()
