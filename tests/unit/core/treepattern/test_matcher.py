"""Unit tests for tree-pattern matching over nested items (Sec. 6.1)."""

import pytest

from repro.core.treepattern.matcher import (
    match_item,
    match_partitions,
    match_rows,
    seed_structure,
)
from repro.core.treepattern.parser import parse_pattern
from repro.core.treepattern.pattern import TreePattern, child, descendant
from repro.nested.values import DataItem


@pytest.fixture
def item_102() -> DataItem:
    """Result item 102 of Tab. 2 (tweets as <text> structs)."""
    return DataItem(
        {
            "user": {"id_str": "lp", "name": "Lisa Paul"},
            "tweets": [
                {"text": "Hello @ls @jm @ls"},
                {"text": "Hello World"},
                {"text": "Hello World"},
                {"text": "Hello @lp"},
            ],
        }
    )


class TestChildEdges:
    def test_struct_attribute(self, item_102):
        paths = match_item(parse_pattern('root{/user{/id_str="lp"}}'), item_102)
        assert {str(path) for path in paths} == {"user", "user.id_str"}

    def test_collection_elements_matched_positionally(self, item_102):
        paths = match_item(
            parse_pattern('root{/tweets{/text="Hello @lp"}}'), item_102
        )
        assert "tweets[4].text" in {str(path) for path in paths}

    def test_value_mismatch_fails(self, item_102):
        assert match_item(parse_pattern('root{/user{/id_str="xx"}}'), item_102) is None

    def test_missing_attribute_fails(self, item_102):
        assert match_item(parse_pattern("root{/missing}"), item_102) is None


class TestDescendantEdges:
    def test_figure_4_id_str_found_at_depth(self, item_102):
        paths = match_item(parse_pattern('root{//id_str="lp"}'), item_102)
        assert {str(path) for path in paths} == {"user.id_str"}

    def test_descendant_through_collections(self):
        item = DataItem({"outer": [{"inner": [{"k": 7}]}]})
        paths = match_item(parse_pattern("root{//k=7}"), item)
        assert {str(path) for path in paths} == {"outer[1].inner[1].k"}

    def test_descendant_matches_multiple_sites(self, item_102):
        item = DataItem({"a": {"x": 1}, "b": {"x": 1}})
        paths = match_item(parse_pattern("root{//x=1}"), item)
        assert {str(path) for path in paths} == {"a.x", "b.x"}


class TestCounts:
    def test_figure_4_exact_count(self, item_102):
        pattern = parse_pattern('root{/tweets{/text="Hello World"[2,2]}}')
        paths = match_item(pattern, item_102)
        assert {str(path) for path in paths} >= {"tweets[2].text", "tweets[3].text"}

    def test_count_violation_fails(self, item_102):
        pattern = parse_pattern('root{/tweets{/text="Hello World"[3,3]}}')
        assert match_item(pattern, item_102) is None

    def test_zero_count_is_negation(self, item_102):
        pattern = parse_pattern('root{/tweets{/text="Nope"[0,0]}}')
        paths = match_item(pattern, item_102)
        assert paths == {p for p in paths}  # matches with no contributed paths

    def test_unbounded_count(self, item_102):
        pattern = parse_pattern('root{/tweets{/text="Hello World"[1,*]}}')
        assert match_item(pattern, item_102) is not None

    def test_count_applies_per_parent_context(self):
        item = DataItem({"groups": [{"vals": [1, 1]}, {"vals": [1]}]})
        # Exactly two 1s within one vals collection: first group qualifies.
        pattern = TreePattern.root(
            child("groups", child("vals", equals=1, count=(2, 2)))
        )
        paths = match_item(pattern, item)
        assert paths is not None
        rendered = {str(path) for path in paths}
        assert "groups[1].vals[1]" in rendered


class TestElementMatching:
    def test_primitive_collection_element(self):
        item = DataItem({"labels": ["a", "b"]})
        paths = match_item(parse_pattern('root{/labels="b"}'), item)
        assert {str(path) for path in paths} == {"labels[2]"}

    def test_whole_collection_without_constraint(self):
        item = DataItem({"labels": ["a", "b"]})
        paths = match_item(parse_pattern("root{/labels}"), item)
        assert {str(path) for path in paths} == {"labels"}


class TestPredicates:
    def test_callable_predicate(self):
        item = DataItem({"n": 7})
        pattern = TreePattern.root(child("n", predicate=lambda value: value > 5))
        assert match_item(pattern, item) is not None
        pattern = TreePattern.root(child("n", predicate=lambda value: value > 9))
        assert match_item(pattern, item) is None


class TestRowsAndSeeds:
    def test_match_rows_keeps_ids(self, item_102):
        other = DataItem({"user": {"id_str": "jm"}, "tweets": []})
        matches = match_rows(
            parse_pattern('root{//id_str="lp"}'), [(101, other), (102, item_102)]
        )
        assert [match.item_id for match in matches] == [102]

    def test_match_partitions_covers_all(self, item_102):
        matches = match_partitions(
            parse_pattern('root{//id_str="lp"}'), [[(1, item_102)], [(2, item_102)]]
        )
        assert [match.item_id for match in matches] == [1, 2]

    def test_seed_structure_builds_contributing_trees(self, item_102):
        matches = match_rows(
            parse_pattern('root{/tweets{/text="Hello @lp"}}'), [(102, item_102)]
        )
        seeds = seed_structure(matches)
        tree = seeds.tree(102)
        node = tree.find(next(iter(matches[0].paths)))
        assert node is not None and node.contributing

    def test_seed_structure_skips_unidentified_rows(self, item_102):
        matches = match_rows(parse_pattern('root{//id_str="lp"}'), [(None, item_102)])
        assert seed_structure(matches).is_empty()
