"""Unit tests for the tree-pattern text syntax."""

import pytest

from repro.core.treepattern.parser import parse_pattern
from repro.core.treepattern.pattern import Edge, NO_EQUALS
from repro.errors import TreePatternSyntaxError


class TestParsing:
    def test_figure_4(self):
        pattern = parse_pattern('root{//id_str="lp", /tweets{/text="Hello World"[2,2]}}')
        first, second = pattern.children
        assert first.name == "id_str" and first.edge == Edge.DESCENDANT
        assert first.equals == "lp"
        text = second.children[0]
        assert text.equals == "Hello World"
        assert text.count == (2, 2)

    def test_whitespace_insensitive(self):
        pattern = parse_pattern('  root {  / a = 1 ,  // b }  ')
        assert [node.name for node in pattern.children] == ["a", "b"]

    def test_number_values(self):
        pattern = parse_pattern("root{/a=2, /b=-3, /c=1.5}")
        values = [node.equals for node in pattern.children]
        assert values == [2, -3, 1.5]

    def test_boolean_and_null(self):
        pattern = parse_pattern("root{/a=true, /b=false, /c=null}")
        assert [node.equals for node in pattern.children] == [True, False, None]

    def test_no_constraint(self):
        pattern = parse_pattern("root{/a}")
        assert pattern.children[0].equals is NO_EQUALS

    def test_unbounded_count(self):
        pattern = parse_pattern("root{/a[2,*]}")
        assert pattern.children[0].count == (2, None)

    def test_string_escapes(self):
        pattern = parse_pattern('root{/a="say \\"hi\\""}')
        assert pattern.children[0].equals == 'say "hi"'

    def test_deep_nesting(self):
        pattern = parse_pattern("root{/a{/b{//c=1}}}")
        assert pattern.children[0].children[0].children[0].name == "c"

    def test_roundtrip_through_render(self):
        texts = [
            'root{//id_str="lp", /tweets{/text="Hello World"[2,2]}}',
            "root{/a=true, /b{//c=null}}",
            "root{/a[0,*]}",
        ]
        for text in texts:
            pattern = parse_pattern(text)
            assert parse_pattern(pattern.render()).render() == pattern.render()


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "notroot{/a}",
            "root",
            "root{}",
            "root{a}",  # missing edge
            "root{/a=}",
            "root{/a[1]}",  # count needs two bounds
            "root{/a} trailing",
            "root{/a=unknownliteral}",
            "root{/a",
            "root{/1a}",
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(TreePatternSyntaxError):
            parse_pattern(bad)

    def test_unexpected_character(self):
        with pytest.raises(TreePatternSyntaxError, match="unexpected character"):
            parse_pattern("root{/a=§}")
