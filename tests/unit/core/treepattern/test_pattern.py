"""Unit tests for the tree-pattern model and builders."""

import pytest

from repro.core.treepattern.pattern import (
    Edge,
    NO_EQUALS,
    PatternNode,
    TreePattern,
    child,
    descendant,
)
from repro.errors import TreePatternError


class TestBuilders:
    def test_child_edge(self):
        node = child("tweets")
        assert node.edge == Edge.CHILD
        assert node.equals is NO_EQUALS

    def test_descendant_edge(self):
        assert descendant("id_str").edge == Edge.DESCENDANT

    def test_equals_none_is_a_real_constraint(self):
        node = child("x", equals=None)
        assert node.equals is None
        assert node.value_matches(None)
        assert not node.value_matches(0)

    def test_no_equals_matches_everything(self):
        node = child("x")
        assert node.value_matches("anything")
        assert not node.has_value_constraint()

    def test_predicate(self):
        node = child("n", predicate=lambda value: value > 3)
        assert node.value_matches(4)
        assert not node.value_matches(2)
        assert node.has_value_constraint()

    def test_equals_and_predicate_combine(self):
        node = child("n", equals=4, predicate=lambda value: value % 2 == 0)
        assert node.value_matches(4)
        assert not node.value_matches(2)  # equals fails

    def test_nested_children(self):
        pattern = TreePattern.root(
            descendant("id_str", equals="lp"),
            child("tweets", child("text", equals="Hello World", count=(2, 2))),
        )
        assert len(pattern.children) == 2
        assert pattern.children[1].children[0].count == (2, 2)


class TestValidation:
    def test_empty_name_rejected(self):
        with pytest.raises(TreePatternError):
            PatternNode("")

    def test_bad_edge_rejected(self):
        with pytest.raises(TreePatternError):
            PatternNode("a", edge="sideways")

    def test_negative_count_rejected(self):
        with pytest.raises(TreePatternError):
            child("a", count=(-1, 2))

    def test_inverted_count_rejected(self):
        with pytest.raises(TreePatternError):
            child("a", count=(3, 2))

    def test_unbounded_count_allowed(self):
        assert child("a", count=(1, None)).count == (1, None)

    def test_empty_pattern_rejected(self):
        with pytest.raises(TreePatternError):
            TreePattern([])


class TestRendering:
    def test_figure_4_pattern(self):
        pattern = TreePattern.root(
            descendant("id_str", equals="lp"),
            child("tweets", child("text", equals="Hello World", count=(2, 2))),
        )
        assert pattern.render() == (
            'root{//id_str="lp", /tweets{/text="Hello World"[2,2]}}'
        )

    def test_escaping(self):
        assert child("t", equals='say "hi"').render() == 't="say \\"hi\\""'

    def test_literals(self):
        assert child("a", equals=None).render() == "a=null"
        assert child("a", equals=True).render() == "a=true"
        assert child("a", equals=3).render() == "a=3"

    def test_unbounded_count_rendering(self):
        assert child("a", count=(1, None)).render() == "a[1,*]"

    def test_predicate_rendering(self):
        assert child("a", predicate=bool).render() == "a=?"
