"""Failure-injection tests: broken sources, UDFs, and provenance stores."""

import pytest

from repro.baselines.lineage import LineageQuerier
from repro.core.backtrace.algorithms import Backtracer
from repro.core.backtrace.tree import BacktraceStructure, BacktraceTree
from repro.core.operator_provenance import (
    InputRef,
    OperatorProvenance,
    UnaryAssociations,
)
from repro.core.paths import parse_path
from repro.core.store import ProvenanceStore
from repro.engine.expressions import col
from repro.engine.plan import ReadNode
from repro.errors import BacktraceError, ExecutionError


class TestBrokenSources:
    def test_loader_exception_propagates(self, session):
        from repro.engine.dataset import Dataset

        def explode():
            raise OSError("disk on fire")

        node = ReadNode(session.next_oid(), "broken", explode)
        with pytest.raises(OSError, match="disk on fire"):
            Dataset(session, node).collect()

    def test_corrupt_jsonl_line(self, tmp_path, session):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"a": 1}\nnot json\n')
        ds = session.read_jsonl(path)
        with pytest.raises(Exception):
            ds.collect()


class TestBrokenUdfs:
    def test_udf_raising_mid_partition(self, session):
        data = [{"a": index} for index in range(10)]

        def sometimes(item):
            if item["a"] == 7:
                raise ValueError("poison row")
            return item

        ds = session.create_dataset(data, "in").map(sometimes)
        with pytest.raises(ExecutionError, match="poison row"):
            ds.collect()

    def test_udf_returning_none(self, session):
        ds = session.create_dataset([{"a": 1}], "in").map(lambda item: None)
        with pytest.raises(ExecutionError):
            ds.collect()

    def test_predicate_raising(self, session):
        bad = col("a").contains("x")  # 'in' over an int raises TypeError
        ds = session.create_dataset([{"a": 1}], "in").filter(bad)
        with pytest.raises(TypeError):
            ds.collect()


class TestBrokenStores:
    def _seed(self, item_id=1):
        tree = BacktraceTree()
        tree.ensure_path(parse_path("a"), contributing=True)
        return BacktraceStructure([(item_id, tree)])

    def test_missing_operator_provenance(self):
        store = ProvenanceStore()
        # A filter whose predecessor was never registered.
        store.register(
            OperatorProvenance(
                2, "filter", (InputRef(1, []),), (), UnaryAssociations([(1, 10)])
            )
        )
        with pytest.raises(BacktraceError, match="no captured provenance"):
            Backtracer(store).backtrace(2, self._seed(10))

    def test_missing_operator_in_lineage(self):
        store = ProvenanceStore()
        store.register(
            OperatorProvenance(
                2, "filter", (InputRef(1, []),), (), UnaryAssociations([(1, 10)])
            )
        )
        with pytest.raises(BacktraceError):
            LineageQuerier(store).backtrace_ids(2, {10})

    def test_unknown_sink(self):
        with pytest.raises(BacktraceError):
            Backtracer(ProvenanceStore()).backtrace(99, self._seed())

    def test_unknown_operator_type(self):
        class WeirdAssociations(UnaryAssociations):
            pass

        store = ProvenanceStore()
        provenance = OperatorProvenance(
            2, "weird", (InputRef(1, []),), (), WeirdAssociations([(1, 10)])
        )
        # Unary-shaped associations still backtrace generically; the guard
        # fires for genuinely unknown association classes.
        from repro.core.operator_provenance import Associations

        class Alien(Associations):
            def __len__(self):
                return 0

            def lineage_bytes(self):
                return 0

            def output_ids(self):
                return iter(())

        alien = OperatorProvenance(3, "alien", (InputRef(1, []),), (), Alien())
        store.register(provenance)
        store.register(alien)
        with pytest.raises(BacktraceError, match="cannot backtrace"):
            Backtracer(store)._step(alien, self._seed())

    def test_ids_never_captured(self, session):
        """Querying with ids that never existed yields empty provenance."""
        ds = session.create_dataset([{"a": 1}], "in").filter(col("a") == 1)
        execution = ds.execute(capture=True)
        sources = Backtracer(execution.store).backtrace(
            execution.root.oid, self._seed(item_id=424242)
        )
        assert all(source.structure.is_empty() for source in sources)
