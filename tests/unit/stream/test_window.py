"""Window assignment, state, and the watermark/late-row semantics."""

from __future__ import annotations

import pytest

from repro.engine.expressions import col, collect_list, count
from repro.engine.session import Session
from repro.errors import ExecutionError, PlanError, StreamError
from repro.stream.window import (
    SlidingWindow,
    TumblingWindow,
    WindowAggregateNode,
    WindowRuntime,
    WindowState,
    window_by,
)


class TestAssignment:
    def test_tumbling_assigns_one_window(self):
        window = TumblingWindow(10.0)
        assert window.assign(0.0) == [(0.0, 10.0)]
        assert window.assign(9.999) == [(0.0, 10.0)]
        assert window.assign(10.0) == [(10.0, 20.0)]
        assert window.assign(25.0) == [(20.0, 30.0)]

    def test_tumbling_rejects_non_positive_size(self):
        with pytest.raises(StreamError):
            TumblingWindow(0)

    def test_sliding_assigns_overlapping_windows(self):
        window = SlidingWindow(10.0, 5.0)
        assert window.assign(12.0) == [(5.0, 15.0), (10.0, 20.0)]
        # slide == size degenerates to tumbling
        assert SlidingWindow(10.0, 10.0).assign(12.0) == [(10.0, 20.0)]

    def test_sliding_rejects_bad_slide(self):
        with pytest.raises(StreamError):
            SlidingWindow(10.0, 0)
        with pytest.raises(StreamError):
            SlidingWindow(10.0, 11.0)


def _window_node(session: Session, window=None) -> WindowAggregateNode:
    dataset = session.create_dataset([{"ts": 0.0, "k": "a"}], "feed")
    windowed = window_by(
        dataset, col("ts"), window or TumblingWindow(10.0), col("k")
    ).agg(count().alias("n"))
    node = windowed.plan
    assert isinstance(node, WindowAggregateNode)
    return node


class TestState:
    def test_flush_emits_due_windows_start_ordered(self, session):
        node = _window_node(session)
        state = WindowState()
        rows = [
            (1, {"ts": 15.0, "k": "a"}),
            (2, {"ts": 3.0, "k": "a"}),
            (3, {"ts": 7.0, "k": "b"}),
        ]
        from repro.nested.values import DataItem

        for pid, raw in rows:
            state.observe(node, pid, DataItem(raw))
        assert state.watermark == 15.0
        flushed = state.flush(state.watermark)
        # Only [0, 10) closed; [10, 20) stays open until the watermark passes 20.
        assert [(interval, key) for interval, key, _ in flushed] == [
            ((0.0, 10.0), ("a",)),
            ((0.0, 10.0), ("b",)),
        ]
        assert [[pid for pid, _ in members] for _, _, members in flushed] == [[2], [3]]
        assert list(state.windows) == [((10.0, 20.0), ("a",))]

    def test_late_row_is_dropped_and_counted(self, session):
        node = _window_node(session)
        state = WindowState()
        from repro.nested.values import DataItem

        state.observe(node, 1, DataItem({"ts": 25.0, "k": "a"}))
        state.flush(state.watermark)  # closes everything through [20, 30)? no: <= 25
        # [20, 30) survives (ends after the watermark); a row for [0, 10) is late.
        state.observe(node, 2, DataItem({"ts": 5.0, "k": "a"}))
        assert state.late_rows == 1
        assert ((0.0, 10.0), ("a",)) not in state.windows

    def test_non_numeric_event_time_raises(self, session):
        node = _window_node(session)
        state = WindowState()
        from repro.nested.values import DataItem

        with pytest.raises(ExecutionError):
            state.observe(node, 1, DataItem({"ts": "noon", "k": "a"}))

    def test_runtime_watermark_is_min_across_operators(self):
        runtime = WindowRuntime()
        assert runtime.watermark() is None
        runtime.state(1).watermark = 10.0
        runtime.state(2).watermark = 5.0
        assert runtime.watermark() == 5.0
        assert runtime.late_rows() == 0


class TestPlanSurface:
    def test_reserved_output_attributes_clash(self, session):
        dataset = session.create_dataset([{"ts": 0.0}], "feed")
        with pytest.raises(PlanError):
            window_by(dataset, col("ts"), TumblingWindow(10.0)).agg(
                count().alias("window_start")
            )

    def test_agg_rejects_non_aggregate_expressions(self, session):
        dataset = session.create_dataset([{"ts": 0.0}], "feed")
        with pytest.raises(PlanError):
            window_by(dataset, col("ts"), TumblingWindow(10.0)).agg(col("ts"))

    def test_batch_execution_degrades_to_single_flush(self, session):
        """Without a stream runtime the node is a plain bounded aggregation."""
        dataset = session.create_dataset(
            [
                {"ts": 1.0, "k": "a", "v": "x"},
                {"ts": 11.0, "k": "a", "v": "y"},
                {"ts": 2.0, "k": "b", "v": "z"},
            ],
            "feed",
        )
        result = window_by(
            dataset, col("ts"), TumblingWindow(10.0), col("k")
        ).agg(collect_list(col("v")).alias("vs"), count().alias("n"))
        items = [item.to_python() for item in result.execute().items()]
        assert items == [
            {"window_start": 0.0, "window_end": 10.0, "k": "a", "vs": ["x"], "n": 1},
            {"window_start": 0.0, "window_end": 10.0, "k": "b", "vs": ["z"], "n": 1},
            {"window_start": 10.0, "window_end": 20.0, "k": "a", "vs": ["y"], "n": 1},
        ]

    def test_windowed_backtrace_marks_time_column(self, session):
        """Window membership shows up as accessed/manipulated time paths."""
        from repro.pebble.query import query_provenance

        dataset = session.create_dataset(
            [{"ts": 1.0, "k": "a", "v": "x"}, {"ts": 2.0, "k": "a", "v": "y"}],
            "feed",
        )
        windowed = window_by(
            dataset, col("ts"), TumblingWindow(10.0), col("k")
        ).agg(collect_list(col("v")).alias("vs"))
        execution = windowed.execute(capture=True)
        result = query_provenance(execution, 'root{/k="a", /vs}')
        entry = result.source("feed").entries[0]
        # The event time decided window membership without being copied into
        # the queried attributes: accessed, and influencing rather than
        # contributing (Tab. 1's green-vs-yellow split).
        assert "ts" in entry.accessed_by()
        assert "ts" in entry.influencing_paths()
        assert "v" in entry.contributing_paths()
