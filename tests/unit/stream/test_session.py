"""StreamSession lifecycle, plan validation, and live-run bookkeeping."""

from __future__ import annotations

import pytest

from repro.engine.expressions import col, collect_list, count
from repro.errors import DataModelError, LiveRunError, StreamError
from repro.stream import StreamSession, TumblingWindow, window_by


@pytest.fixture
def stream(tmp_path) -> StreamSession:
    return StreamSession(warehouse=tmp_path / "wh", name="feed", num_partitions=2)


def _rows(lo: int, hi: int) -> list[dict]:
    return [{"id": i, "user": f"u{i % 2}", "ts": float(i)} for i in range(lo, hi)]


class TestLifecycle:
    def test_ingest_requires_open(self, stream):
        with pytest.raises(StreamError, match="open"):
            stream.ingest(_rows(0, 2))

    def test_finish_requires_open(self, stream):
        with pytest.raises(StreamError, match="open"):
            stream.finish()

    def test_open_requires_source(self, stream, session):
        dataset = session.create_dataset(_rows(0, 2), "other")
        with pytest.raises(StreamError, match="source"):
            stream.open(dataset)

    def test_source_is_singular(self, stream):
        stream.source("a")
        with pytest.raises(StreamError, match="exactly one source"):
            stream.source("b")

    def test_open_twice_fails(self, stream):
        dataset = stream.dataset().filter(col("id") >= 0)
        stream.open(dataset)
        with pytest.raises(StreamError, match="already open"):
            stream.open(dataset)

    def test_ingest_after_finish_fails(self, stream):
        stream.open(stream.dataset().filter(col("id") >= 0))
        stream.ingest(_rows(0, 2))
        stream.finish()
        with pytest.raises(StreamError, match="finished"):
            stream.ingest(_rows(2, 4))
        with pytest.raises(StreamError, match="finished"):
            stream.finish()

    def test_non_item_rows_are_rejected(self, stream):
        stream.open(stream.dataset().filter(col("id") >= 0))
        with pytest.raises(DataModelError):
            stream.ingest([42])

    def test_epoch_and_pid_bookkeeping(self, stream):
        record = stream.open(stream.dataset().filter(col("id") >= 0))
        assert record.live and record.segment_epoch == 0
        first = stream.ingest(_rows(0, 3))
        second = stream.ingest(_rows(3, 5))
        assert (first["epoch"], second["epoch"]) == (1, 2)
        assert stream.epochs == 2
        assert stream.run_id == record.run_id
        # Pids are globally unique across batches: the manifest persists the
        # session's id cursor so a resumed session cannot collide.
        from repro.warehouse.reader import load_manifest

        manifest = load_manifest(stream.warehouse.run_dir(record.run_id))
        assert manifest["next_pid"] == stream._next_pid > 1
        assert first["rows"] == 3 and second["rows"] == 2

    def test_watermark_advances_with_windows(self, stream):
        windowed = window_by(
            stream.dataset(), col("ts"), TumblingWindow(2.0), col("user")
        ).agg(count().alias("n"))
        stream.open(windowed)
        assert stream.watermark is None
        stream.ingest(_rows(0, 4))
        assert stream.watermark == 3.0
        stream.ingest(_rows(4, 8))
        assert stream.watermark == 7.0
        assert stream.late_rows == 0
        stream.finish(compact=False)

    def test_late_rows_counted(self, stream):
        windowed = window_by(
            stream.dataset(), col("ts"), TumblingWindow(2.0)
        ).agg(count().alias("n"))
        stream.open(windowed)
        stream.ingest(_rows(8, 10))
        stream.ingest(_rows(0, 2))  # both fall in windows the flush closed
        assert stream.late_rows == 2


class TestValidation:
    def test_join_rejected(self, stream):
        other = stream.session.create_dataset(_rows(0, 2), "dim")
        plan = stream.dataset().join(other, col("id") == col("id"))
        with pytest.raises(StreamError):
            stream.open(plan)

    def test_union_rejected(self, stream):
        base = stream.dataset()
        # Rejected either as a second consumer of the read or as a union --
        # both violate the single-chain rule.
        with pytest.raises(StreamError):
            stream.open(base.filter(col("id") >= 0).union(base.filter(col("id") < 0)))

    def test_blocking_operators_rejected(self, stream):
        with pytest.raises(StreamError, match="blocking"):
            stream.open(stream.dataset().distinct())

    def test_unbounded_aggregate_rejected(self, stream):
        plan = stream.dataset().group_by(col("user")).agg(
            collect_list(col("id")).alias("ids")
        )
        with pytest.raises(StreamError, match="window_by"):
            stream.open(plan)

    def test_foreign_source_rejected(self, stream, session):
        dataset = session.create_dataset(_rows(0, 2), "elsewhere")
        stream.source()
        with pytest.raises(StreamError, match="stream source"):
            stream.open(dataset.filter(col("id") >= 0))


class TestWarehouseGuards:
    def test_batch_index_build_fails_typed_on_live_run(self, stream):
        record = stream.open(stream.dataset().filter(col("id") >= 0))
        stream.ingest(_rows(0, 4))
        with pytest.raises(LiveRunError) as err:
            stream.warehouse.build_index(record.run_id)
        assert err.value.code == "run_live"
        assert "incrementally" in str(err.value)

    def test_append_to_sealed_run_fails(self, stream):
        record = stream.open(stream.dataset().filter(col("id") >= 0))
        stream.ingest(_rows(0, 2))
        stream.finish(compact=False)
        fresh = StreamSession(warehouse=stream.warehouse, name="feed2")
        fresh.open(fresh.dataset().filter(col("id") >= 0))
        with pytest.raises(LiveRunError):
            stream.warehouse.append_live_epoch(
                record.run_id, None, next_pid=99
            )
