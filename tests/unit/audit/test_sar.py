"""Subject-access requests and erasure receipts: templates, pages, digests."""

from __future__ import annotations

import json

import pytest

from repro.audit.forward import ForwardTracer
from repro.audit.sar import (
    DEFAULT_SUBJECT_TEMPLATE,
    _paginate,
    report_digest,
    sar_over_tracers,
    subject_access_request,
    subject_pattern,
    verify_erasure,
)
from repro.core.treepattern.parser import parse_pattern
from repro.errors import AuditError
from repro.warehouse import Warehouse


class TestSubjectPattern:
    def test_default_template(self):
        assert subject_pattern("lp") == 'root{//*="lp"}'

    def test_quotes_and_backslashes_are_escaped(self):
        pattern = subject_pattern('o"hara\\smith')
        node = parse_pattern(pattern).children[0]
        assert node.equals == 'o"hara\\smith'

    def test_custom_template(self):
        pattern = subject_pattern("u1", 'root{//user{/id_str="{subject}"}}')
        assert pattern == 'root{//user{/id_str="u1"}}'

    def test_template_without_placeholder_raises(self):
        with pytest.raises(AuditError, match="placeholder"):
            subject_pattern("u1", "root{//id_str}")


class TestPagination:
    def test_dedupes_sorts_and_slices(self):
        page, total, pages = _paginate(["b", "a", "c", "a"], page=1, page_size=2)
        assert (page, total, pages) == (["a", "b"], 3, 2)
        page, _, _ = _paginate(["b", "a", "c"], page=2, page_size=2)
        assert page == ["c"]

    def test_empty_subject_list_is_one_empty_page(self):
        assert _paginate([], page=1, page_size=10) == ([], 0, 1)

    def test_out_of_range_pages_raise(self):
        with pytest.raises(AuditError, match="start at 1"):
            _paginate(["a"], page=0, page_size=1)
        with pytest.raises(AuditError, match="out of range"):
            _paginate(["a", "b"], page=3, page_size=1)
        with pytest.raises(AuditError, match="page size"):
            _paginate(["a"], page=1, page_size=0)


class TestSarReport:
    @pytest.fixture
    def tracers(self, captured_example):
        return [("run-1", ForwardTracer(captured_example))]

    def test_report_shape(self, tracers):
        report = sar_over_tracers(tracers, ["lp", "nobody-xyz"])
        assert report["report"] == "subject-access-request"
        assert report["template"] == DEFAULT_SUBJECT_TEMPLATE
        assert report["total_subjects"] == 2
        assert [entry["subject"] for entry in report["subjects"]] == [
            "lp",
            "nobody-xyz",
        ]
        hit, miss = report["subjects"]
        assert hit["run_count"] == 1 and hit["total_outputs"] > 0
        assert hit["runs"][0]["run_id"] == "run-1"
        assert hit["runs"][0]["output_ids"] == sorted(hit["runs"][0]["output_ids"])
        # Runs without exposure are omitted entirely, not listed as zeros.
        assert miss["runs"] == [] and miss["total_outputs"] == 0

    def test_include_items_attaches_outputs(self, tracers):
        report = sar_over_tracers(tracers, ["lp"], include_items=True)
        outputs = report["subjects"][0]["runs"][0]["outputs"]
        assert outputs and all("id" in o and "item" in o for o in outputs)
        json.dumps(report)  # items must be JSON-shaped

    def test_report_is_timing_free_and_reproducible(self, tracers):
        first = sar_over_tracers(tracers, ["lp", "Lisa Paul"])
        second = sar_over_tracers(tracers, ["Lisa Paul", "lp"])
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)


class TestWarehouseSar:
    @pytest.fixture
    def warehouse(self, captured_example, tmp_path):
        warehouse = Warehouse.open(tmp_path / "wh")
        warehouse.record(captured_example, name="example")
        return warehouse

    def test_indexed_equals_scan(self, warehouse):
        subjects = ["lp", "Lisa Paul", "nobody-xyz"]
        indexed = subject_access_request(warehouse, subjects, use_index=True)
        scanned = subject_access_request(warehouse, subjects, use_index=False)
        assert json.dumps(indexed, sort_keys=True) == json.dumps(
            scanned, sort_keys=True
        )

    def test_pages_partition_the_subjects(self, warehouse):
        subjects = ["a", "b", "c", "d", "e"]
        seen = []
        for page in (1, 2, 3):
            report = subject_access_request(
                warehouse, subjects, page=page, page_size=2
            )
            assert report["pages"] == 3
            seen.extend(entry["subject"] for entry in report["subjects"])
        assert seen == sorted(subjects)

    def test_erasure_dirty_then_clean(self, warehouse):
        dirty = verify_erasure(warehouse, ["lp"])
        assert dirty["clean"] is False
        assert dirty["subjects"][0]["residuals"][0]["output_ids"]
        clean = verify_erasure(warehouse, ["nobody-xyz"])
        assert clean["clean"] is True
        assert clean["subjects"][0]["residuals"] == []

    def test_erasure_digest_is_a_receipt(self, warehouse):
        first = verify_erasure(warehouse, ["lp", "nobody-xyz"])
        second = verify_erasure(warehouse, ["nobody-xyz", "lp"])
        assert first["digest"] == second["digest"]
        body = {key: value for key, value in first.items() if key != "digest"}
        assert first["digest"] == report_digest(body)
        # Any body change changes the receipt.
        assert report_digest(dict(body, clean=True)) != first["digest"]
