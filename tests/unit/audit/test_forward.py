"""Forward tracing over in-memory captures: the per-operator dual steps."""

from __future__ import annotations

import json

import pytest

from repro.audit.forward import ForwardTracer, required_terms, trace_forward
from repro.core.treepattern.parser import parse_pattern
from repro.engine import col, collect_list, count, struct_
from repro.errors import AuditError
from repro.warehouse import Warehouse


class TestRequiredTerms:
    def test_equality_leaves_are_required(self):
        pattern = parse_pattern('root{//id_str="lp", /user{/name="Lisa Paul"}}')
        assert required_terms(pattern) == {"lp", "Lisa Paul"}

    def test_zero_lower_bound_disables_the_subtree(self):
        """[0,n] may be a negation: nothing below it is a required term."""
        pattern = parse_pattern('root{/tweets[0,2]{/text="Hello"}}')
        assert required_terms(pattern) == set()

    def test_positive_count_keeps_terms_required(self):
        pattern = parse_pattern('root{/tweets[2,2]{/text="Hello"}}')
        assert required_terms(pattern) == {"Hello"}

    def test_non_string_constraints_yield_nothing(self):
        assert required_terms(parse_pattern("root{//retweet_count=3}")) == set()


class TestForwardSteps:
    """Each operator kind: forward(x) contains y iff backtrace(y) contains x."""

    def _roundtrip(self, execution, pattern):
        """Forward from *pattern* inputs == outputs whose backtrace hits them."""
        tracer = ForwardTracer(execution)
        forward = tracer.trace(pattern)
        seeds = {i for source in forward.sources for i in source.ids}
        assert seeds, f"pattern {pattern} matched no source items"
        # Backtrace every output item individually: an output belongs in the
        # forward answer exactly when its backtrace reaches a seed.
        expected = set()
        for output_id, _ in execution.rows():
            if output_id is None:
                continue
            if _backtrace_ids(execution, output_id) & seeds:
                expected.add(output_id)
        assert set(forward.output_ids) == expected
        return forward

    def test_filter_select_chain(self, session):
        data = [{"k": "a", "v": 1}, {"k": "b", "v": 2}, {"k": "keepme", "v": 3}]
        execution = (
            session.create_dataset(data, "rows.json")
            .filter(col("k").contains("keep"))
            .select(col("k").alias("key"))
            .execute(capture=True)
        )
        forward = self._roundtrip(execution, 'root{/k="keepme"}')
        assert len(forward.output_ids) == 1

    def test_flatten_fans_out(self, session):
        data = [
            {"who": "lp", "tags": [{"t": "x"}, {"t": "y"}]},
            {"who": "jm", "tags": [{"t": "z"}]},
        ]
        execution = (
            session.create_dataset(data, "rows.json")
            .flatten("tags", "tag")
            .execute(capture=True)
        )
        forward = self._roundtrip(execution, 'root{/who="lp"}')
        assert len(forward.output_ids) == 2  # lp's two tags

    def test_join_reaches_both_sides(self, session):
        left = session.create_dataset(
            [{"id": "u1", "name": "A"}, {"id": "u2", "name": "B"}], "users.json"
        )
        right = session.create_dataset(
            [{"uid": "u1", "city": "X"}, {"uid": "u3", "city": "Y"}], "homes.json"
        )
        execution = left.join(right, col("id") == col("uid")).execute(capture=True)
        self._roundtrip(execution, 'root{/id="u1"}')
        self._roundtrip(execution, 'root{/uid="u1"}')

    def test_union_and_distinct(self, session):
        a = session.create_dataset([{"k": "dup"}, {"k": "only-a"}], "a.json")
        b = session.create_dataset([{"k": "dup"}, {"k": "only-b"}], "b.json")
        execution = a.union(b).distinct().execute(capture=True)
        forward = self._roundtrip(execution, 'root{/k="dup"}')
        assert len(forward.output_ids) == 1  # both duplicates feed one survivor

    def test_aggregation_members(self, session):
        data = [
            {"g": "x", "v": 1},
            {"g": "x", "v": 2},
            {"g": "y", "v": 3},
        ]
        execution = (
            session.create_dataset(data, "rows.json")
            .group_by(col("g"))
            .agg(collect_list(struct_(v=col("v"))).alias("vs"), count().alias("n"))
            .execute(capture=True)
        )
        forward = ForwardTracer(execution).trace('root{/g="x", /v=1}')
        assert len(forward.output_ids) == 1  # only group x derives from v=1


class TestResultShape:
    def test_to_json_excludes_stats(self, captured_example):
        result = ForwardTracer(captured_example).trace('root{//id_str="lp"}')
        payload = result.to_json()
        assert "stats" not in payload
        assert result.stats["index_used"] is False
        assert payload["direction"] == "forward"
        assert payload["output_ids"] == sorted(payload["output_ids"])

    def test_capture_disabled_raises(self, example_pipeline):
        execution = example_pipeline.execute(capture=False)
        with pytest.raises(AuditError):
            ForwardTracer(execution)

    def test_unknown_method_raises(self, captured_example, tmp_path):
        warehouse = Warehouse.open(tmp_path / "wh")
        warehouse.record(captured_example, name="example")
        with pytest.raises(AuditError, match="unknown audit method"):
            trace_forward(warehouse, "root", method="psychic")


class TestIndexedEqualsScan:
    @pytest.mark.parametrize("method", ["lazy", "eager"])
    def test_byte_identical_answers(self, captured_example, tmp_path, method):
        warehouse = Warehouse.open(tmp_path / "wh")
        warehouse.record(captured_example, name="example")
        pattern = 'root{//id_str="lp"}'
        indexed = trace_forward(warehouse, pattern, method=method, use_index=True)
        scanned = trace_forward(warehouse, pattern, method=method, use_index=False)
        assert indexed.stats["index_used"] and not scanned.stats["index_used"]
        assert json.dumps(indexed.to_json(), sort_keys=True) == json.dumps(
            scanned.to_json(), sort_keys=True
        )

    def test_index_skips_untouched_operators(self, captured_example, tmp_path):
        warehouse = Warehouse.open(tmp_path / "wh")
        warehouse.record(captured_example, name="example")
        miss = trace_forward(warehouse, 'root{//id_str="no-such-user"}')
        assert miss.output_ids == ()
        assert miss.stats["operators_decoded"] == 0
        assert miss.stats["operators_skipped"] > 0


def _backtrace_ids(execution, output_id):
    """Source item ids in the full-item backtrace of one output item."""
    from repro.core.backtrace.algorithms import Backtracer
    from repro.core.backtrace.tree import BacktraceStructure, BacktraceTree
    from repro.core.paths import enumerate_paths

    tree = BacktraceTree()
    for path in enumerate_paths(_item_of(execution, output_id)):
        tree.ensure_path(path, contributing=True)
    structure = BacktraceStructure()
    structure.add(output_id, tree)
    sources = Backtracer(execution.store).backtrace(execution.root.oid, structure)
    return {i for source in sources for i in source.ids()}


def _item_of(execution, output_id):
    for pid, item in execution.rows():
        if pid == output_id:
            return item
    raise AssertionError(f"no output with id {output_id}")
