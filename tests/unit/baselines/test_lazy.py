"""Unit tests for the PROVision-style lazy provenance querier."""

from repro.baselines.lazy import LazyProvenanceQuerier
from repro.engine.expressions import col
from repro.engine.session import Session
from repro.pebble.query import query_provenance
from repro.workloads.scenarios import RUNNING_EXAMPLE_PATTERN, build_running_example


class TestLazyQuerier:
    def test_source_count_matches_reads(self, session, example_tweets):
        pipeline = build_running_example(session, example_tweets)
        assert LazyProvenanceQuerier(pipeline).source_count() == 2

    def test_equivalent_ids_to_eager(self, session, example_tweets):
        pipeline = build_running_example(session, example_tweets)
        eager = query_provenance(pipeline.execute(capture=True), RUNNING_EXAMPLE_PATTERN)
        lazy = LazyProvenanceQuerier(pipeline).query(RUNNING_EXAMPLE_PATTERN)
        assert lazy.all_ids() == eager.all_ids()

    def test_equivalent_trees_to_eager(self, session, example_tweets):
        pipeline = build_running_example(session, example_tweets)
        eager = query_provenance(pipeline.execute(capture=True), RUNNING_EXAMPLE_PATTERN)
        lazy = LazyProvenanceQuerier(pipeline).query(RUNNING_EXAMPLE_PATTERN)
        eager_entry = eager.sources[0].entries[0]
        lazy_entry = lazy.sources[0].entries[0]
        assert eager_entry.tree.render() == lazy_entry.tree.render()

    def test_single_input_pipeline(self):
        session = Session(2)
        ds = session.create_dataset([{"a": 1}, {"a": 2}], "in").filter(col("a") == 1)
        querier = LazyProvenanceQuerier(ds)
        assert querier.source_count() == 1
        result = querier.query("root{/a=1}")
        assert result.all_ids() == {"in": [1]}

    def test_no_capture_needed_before_query(self):
        """The lazy querier works on a never-executed pipeline."""
        session = Session(2)
        ds = session.create_dataset([{"a": 7}], "in").select(col("a"))
        result = LazyProvenanceQuerier(ds).query("root{/a=7}")
        assert result.all_ids() == {"in": [1]}
