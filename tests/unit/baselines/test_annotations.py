"""Unit tests for the Lipstick-style value-annotation baseline (Sec. 2)."""

from repro.baselines.annotations import ValueAnnotationCapture, count_annotations
from repro.nested.values import DataItem
from repro.workloads.scenarios import RUNNING_EXAMPLE_TWEETS


class TestAnnotationCounts:
    def test_running_example_35_vs_5(self):
        """Tab. 1: value-level annotation needs 35 annotations, Pebble 5."""
        items = [DataItem(tweet) for tweet in RUNNING_EXAMPLE_TWEETS]
        assert count_annotations(items) == 35
        assert len(items) == 5  # structural provenance: one id per top-level item

    def test_flat_item(self):
        # item itself + two constants
        assert count_annotations([DataItem(a=1, b="x")]) == 3

    def test_nested_struct(self):
        # item + constant (structs are addressed through their constants)
        assert count_annotations([DataItem(user={"id": "lp"})]) == 2

    def test_collection_elements_counted(self):
        # item + 3 constants inside the bag (the bag is addressed via elements)
        assert count_annotations([DataItem(tags=["a", "b", "c"])]) == 4

    def test_empty_dataset(self):
        assert count_annotations([]) == 0


class TestValueAnnotationCapture:
    def test_annotation_ids_unique_and_complete(self):
        capture = ValueAnnotationCapture()
        total = capture.annotate([DataItem(tweet) for tweet in RUNNING_EXAMPLE_TWEETS])
        assert total == 35
        assert len(capture.annotations) == 35
        assert len(set(capture.annotations)) == 35

    def test_paths_point_at_values(self):
        capture = ValueAnnotationCapture()
        capture.annotate([DataItem(user={"id": "lp"}, tags=["x"])])
        rendered = {str(path) for _, path in capture.annotations.values()}
        assert rendered == {"", "user.id", "tags[1]"}

    def test_size_grows_with_values_not_items(self):
        """The scaling problem of Lipstick: size tracks value count."""
        narrow = ValueAnnotationCapture()
        narrow.annotate([DataItem(a=1)] * 10)
        wide = ValueAnnotationCapture()
        wide.annotate([DataItem({f"a{i}": i for i in range(20)})] * 10)
        assert wide.size_bytes() > 10 * narrow.size_bytes()

    def test_item_index_recorded(self):
        capture = ValueAnnotationCapture()
        capture.annotate([DataItem(a=1), DataItem(a=2)])
        indices = {index for index, _ in capture.annotations.values()}
        assert indices == {0, 1}
