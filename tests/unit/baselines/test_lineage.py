"""Unit tests for the Titian-style lineage baseline."""

from repro.baselines.lineage import LineageQuerier
from repro.engine.expressions import col, collect_list
from repro.engine.session import Session


def _lineage(execution, output_ids):
    return LineageQuerier(execution.store).backtrace_ids(execution.root.oid, output_ids)


class TestLineage:
    def test_filter_select_chain(self):
        session = Session(2)
        ds = (
            session.create_dataset([{"a": 1}, {"a": 2}, {"a": 3}], "in")
            .filter(col("a") >= 2)
            .select(col("a"))
        )
        execution = ds.execute(capture=True)
        last_id = execution.rows()[-1][0]
        [source] = _lineage(execution, {last_id})
        assert source.ids == {3}

    def test_aggregation_returns_all_group_members(self):
        """The imprecision of lineage (Sec. 2): every member shows up."""
        session = Session(2)
        data = [{"g": 1, "v": "a"}, {"g": 1, "v": "b"}, {"g": 2, "v": "c"}]
        ds = session.create_dataset(data, "in").group_by(col("g")).agg(
            collect_list(col("v")).alias("vs")
        )
        execution = ds.execute(capture=True)
        g1_id = next(pid for pid, item in execution.rows() if item["g"] == 1)
        [source] = _lineage(execution, {g1_id})
        assert source.ids == {1, 2}

    def test_union_splits_sides(self):
        session = Session(1)
        left = session.create_dataset([{"a": 1}], "left")
        right = session.create_dataset([{"a": 2}], "right")
        execution = left.union(right).execute(capture=True)
        ids = {pid for pid, _ in execution.rows()}
        sources = _lineage(execution, ids)
        by_name = {source.name: source.ids for source in sources}
        assert by_name == {"left": {1}, "right": {2}}

    def test_join_traces_both_sides(self):
        session = Session(2)
        left = session.create_dataset([{"k": 1}], "left")
        right = session.create_dataset([{"fk": 1}], "right")
        execution = left.join(right, col("k") == col("fk")).execute(capture=True)
        out_id = execution.rows()[0][0]
        sources = _lineage(execution, {out_id})
        by_name = {source.name: source.ids for source in sources}
        assert by_name["left"] == {1}
        assert by_name["right"] == {2}

    def test_flatten_ignores_positions(self):
        session = Session(1)
        ds = session.create_dataset([{"tags": ["x", "y"]}], "in").flatten("tags", "t")
        execution = ds.execute(capture=True)
        out_ids = {pid for pid, _ in execution.rows()}
        [source] = _lineage(execution, out_ids)
        assert source.ids == {1}

    def test_empty_output_ids(self):
        session = Session(1)
        ds = session.create_dataset([{"a": 1}], "in").filter(col("a") == 1)
        execution = ds.execute(capture=True)
        [source] = _lineage(execution, set())
        assert source.ids == set()

    def test_works_over_lineage_only_capture(self):
        from repro.engine.executor import Executor

        session = Session(1)
        ds = session.create_dataset([{"a": 1, "tags": ["x"]}], "in").flatten("tags", "t")
        execution = Executor(1, capture=True, lineage_only=True).execute(ds.plan)
        out_ids = {pid for pid, _ in execution.rows()}
        [source] = LineageQuerier(execution.store).backtrace_ids(ds.plan.oid, out_ids)
        assert source.ids == {1}
