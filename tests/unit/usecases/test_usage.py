"""Unit tests for the data-usage pattern analysis (Fig. 10)."""

import pytest

from repro.core.usecases.usage import UsageAnalysis
from repro.engine.expressions import col, collect_list
from repro.engine.session import Session
from repro.pebble.query import query_provenance


@pytest.fixture
def analysis() -> UsageAnalysis:
    """Provenance of two queries over a small pipeline."""
    usage = UsageAnalysis()
    data = [
        {"key": "k1", "title": "alpha", "year": 2015, "secret": "s1"},
        {"key": "k2", "title": "beta", "year": 2016, "secret": "s2"},
        {"key": "k3", "title": "gamma", "year": 2015, "secret": "s3"},
    ]

    def run(pattern):
        session = Session(2)
        ds = (
            session.create_dataset(data, "records")
            .filter(col("year") == 2015)
            .select(col("key"), col("title"))
        )
        usage.add(query_provenance(ds.execute(capture=True), pattern))

    run('root{/key="k1"}')
    run('root{/title="gamma"}')
    return usage


class TestAccumulation:
    def test_query_count(self, analysis):
        assert analysis.query_count == 2

    def test_hot_items(self, analysis):
        hot = dict(analysis.hot_items("records"))
        assert hot == {1: 1, 3: 1}

    def test_cold_items(self, analysis):
        assert analysis.cold_items("records", universe=[1, 2, 3]) == [2]

    def test_hot_attributes_are_contributing(self, analysis):
        hot = dict(analysis.hot_attributes("records"))
        assert "key" in hot and "title" in hot
        assert "secret" not in hot

    def test_influencing_only_year(self, analysis):
        """``year`` is accessed by the filter but never contributes --
        the Fig. 10 observation that drives the reconstruction-risk point."""
        influencing = dict(analysis.influencing_only_attributes("records"))
        assert "year" in influencing

    def test_cold_attributes(self, analysis):
        cold = analysis.cold_attributes("records", ["key", "title", "year", "secret"])
        assert cold == ["secret"]


class TestHeatmap:
    def test_matrix_counts(self, analysis):
        rows = analysis.heatmap("records", [1, 2, 3], ["key", "title", "year"])
        by_id = {row.item_id: row for row in rows}
        assert by_id[1].item_uses == 1
        assert by_id[2].item_uses == 0
        assert by_id[1].attribute_counts["key"] == 1
        assert by_id[2].attribute_counts["key"] == 0

    def test_render(self, analysis):
        rendered = analysis.render_heatmap("records", [1, 2, 3], ["key", "year"])
        lines = rendered.splitlines()
        assert lines[0].split() == ["id", "item", "key", "year"]
        assert len(lines) == 4

    def test_co_accessed_pairs(self, analysis):
        pairs = dict(analysis.co_accessed_pairs("records"))
        assert pairs.get(("key", "title"), 0) >= 1

    def test_partitioning_advice_mentions_vertical(self, analysis):
        advice = analysis.partitioning_advice(
            "records", ["key", "title", "year", "secret", "a", "b", "c"]
        )
        assert "vertical" in advice
        assert "year" in advice


class TestAggregatedWorkload:
    def test_nested_attributes_roll_up_to_top_level(self):
        usage = UsageAnalysis()
        session = Session(2)
        data = [{"grp": "g", "vals": [1, 2]}]
        ds = (
            session.create_dataset(data, "in")
            .flatten("vals", "v")
            .group_by(col("grp"))
            .agg(collect_list(col("v")).alias("collected"))
        )
        usage.add(query_provenance(ds.execute(capture=True), 'root{/grp="g", /collected}'))
        hot = dict(analysis_hot := usage.hot_attributes("in"))
        assert "vals" in hot


class TestShadedHeatmap:
    def test_glyphs_encode_intensity(self, analysis):
        rendered = analysis.render_heatmap_shaded("records", [1, 2, 3], ["key", "year"])
        lines = rendered.splitlines()
        assert len(lines) == 4
        # Item 2 never contributed: its row is entirely cold dots.
        cold_row = next(line for line in lines[1:] if line.lstrip().startswith("2"))
        assert "░" not in cold_row and "█" not in cold_row
        assert "." in cold_row
        # Item 1 contributed: its row carries at least one shade glyph.
        hot_row = next(line for line in lines[1:] if line.lstrip().startswith("1"))
        assert any(shade in hot_row for shade in "░▒▓█")

    def test_empty_selection(self, analysis):
        rendered = analysis.render_heatmap_shaded("records", [], ["key"])
        assert rendered.splitlines()[0].strip().endswith("key")
