"""Unit tests for the GDPR auditing use-case (Sec. 7.3.5)."""

import pytest

from repro.core.usecases.auditing import audit_leak
from repro.engine.expressions import col
from repro.engine.session import Session
from repro.pebble.query import query_provenance


@pytest.fixture
def leak_report():
    """Audit of a leaked query result over customer records."""
    session = Session(2)
    customers = [
        {"name": "Lisa", "city": "Stuttgart", "card": "1111", "age": 34},
        {"name": "John", "city": "Berlin", "card": "2222", "age": 51},
        {"name": "Ada", "city": "London", "card": "3333", "age": 36},
    ]
    leaked_query = (
        session.create_dataset(customers, "customers")
        .filter(col("age") < 40)
        .select(col("name"), col("city"))
    )
    execution = leaked_query.execute(capture=True)
    # The whole leaked result is audited: the pattern names every leaked
    # attribute so the backtrace covers the complete exposed subtree.
    provenance = query_provenance(execution, "root{/name, /city}")
    return audit_leak(provenance)


class TestAuditReport:
    def test_affected_customers(self, leak_report):
        assert leak_report.affected_ids("customers") == [1, 3]

    def test_leaked_attributes_precise(self, leak_report):
        assert leak_report.leaked_attributes("customers") == {"name", "city"}

    def test_card_numbers_not_leaked(self, leak_report):
        """Lineage-based auditing would flag ``card`` too (Sec. 7.3.5)."""
        assert "card" not in leak_report.leaked_attributes("customers")

    def test_age_at_risk_of_reconstruction(self, leak_report):
        assert "age" in leak_report.at_risk_attributes("customers")

    def test_overreport_factor(self, leak_report):
        factor = leak_report.lineage_overreport("customers", ["name", "city", "card", "age"])
        assert factor == pytest.approx(2.0)

    def test_render(self, leak_report):
        rendered = leak_report.render()
        assert "leak audit for customers" in rendered
        assert "at risk (accessed): age" in rendered

    def test_empty_report(self):
        session = Session(1)
        ds = session.create_dataset([{"a": 1}], "in").filter(col("a") == 2)
        provenance = query_provenance(ds.execute(capture=True), "root{/a}")
        report = audit_leak(provenance)
        assert report.affected_ids("in") == []
        assert report.lineage_overreport("in", ["a"]) == 1.0
