"""Sharded warehouse storage: manifest, placement, epochs, rebalance.

The shard layer must never change an answer: runs live under
``shards/<name>/runs/`` instead of ``runs/``, sub-sharded operator
segments under ``ops/range-NNNN/``, and every reader resolves through the
catalog record -- so these tests repeatedly pin "same backtrace before and
after" alongside the layout assertions.
"""

import json
import subprocess
import sys

import pytest

from repro.core.ring import HashRing
from repro.errors import ProvenanceError
from repro.pebble.query import query_provenance
from repro.serve.service import result_to_json
from repro.warehouse import Warehouse
from repro.warehouse.catalog import Catalog, LEGACY_SHARD, ShardManifest


def _answer(root, run_id, pattern):
    return json.dumps(
        result_to_json(query_provenance(Warehouse.open(root).load(run_id), pattern)),
        sort_keys=True,
    )


class TestShardManifest:
    def test_round_trips_through_the_catalog_file(self, tmp_path):
        warehouse = Warehouse.open(tmp_path)
        names = warehouse.init_shards(3)
        assert names == ["shard-00", "shard-01", "shard-02"]
        reopened = Catalog.load(tmp_path)
        assert reopened.manifest is not None
        assert reopened.manifest.shards == names
        assert reopened.manifest.epochs == {name: 0 for name in names}
        assert reopened.epoch_vector() == {
            LEGACY_SHARD: 0, "shard-00": 0, "shard-01": 0, "shard-02": 0,
        }

    def test_manifest_obj_round_trip(self):
        manifest = ShardManifest(["a", "b"], 16, {"a": 3, "b": 0})
        assert ShardManifest.from_obj(manifest.to_obj()).to_obj() == manifest.to_obj()

    def test_init_is_idempotent_and_grow_only(self, tmp_path):
        warehouse = Warehouse.open(tmp_path)
        warehouse.init_shards(2)
        assert warehouse.init_shards(2) == ["shard-00", "shard-01"]
        grown = warehouse.init_shards(4)
        assert grown[:2] == ["shard-00", "shard-01"]  # existing names keep ids
        with pytest.raises(ProvenanceError):
            warehouse.init_shards(3)  # shrinking would orphan directories

    def test_legacy_catalog_without_shard_keys_still_loads(self, tmp_path):
        Catalog(tmp_path).save()  # a fresh catalog document on disk
        path = tmp_path / "catalog.json"
        document = json.loads(path.read_text())
        document.pop("shards", None)
        document.pop("epoch", None)
        path.write_text(json.dumps(document))
        catalog = Catalog.load(tmp_path)
        assert catalog.manifest is None
        assert catalog.epoch_vector() == {LEGACY_SHARD: 0}


class TestPlacement:
    def test_record_lands_on_its_ring_shard(self, captured_example, tmp_path):
        warehouse = Warehouse.open(tmp_path)
        warehouse.init_shards(4)
        record = warehouse.record(captured_example, name="example")
        ring = HashRing(["shard-00", "shard-01", "shard-02", "shard-03"])
        assert record.shard == ring.assign(record.run_id)
        run_dir = tmp_path / "shards" / record.shard / "runs" / record.run_id
        assert run_dir.is_dir()
        assert warehouse.run_dir(record.run_id) == run_dir

    def test_unsharded_warehouse_keeps_the_flat_layout(
        self, captured_example, tmp_path
    ):
        warehouse = Warehouse.open(tmp_path)
        record = warehouse.record(captured_example, name="example")
        assert record.shard is None
        assert (tmp_path / "runs" / record.run_id).is_dir()

    def test_placement_survives_reopen_and_hash_seed(
        self, captured_example, tmp_path
    ):
        warehouse = Warehouse.open(tmp_path)
        warehouse.init_shards(4)
        record = warehouse.record(captured_example, name="example")
        assert Warehouse.open(tmp_path).shard_for(record.run_id) == record.shard
        script = (
            "import sys\n"
            "sys.path.insert(0, 'src')\n"
            "from repro.warehouse import Warehouse\n"
            f"print(Warehouse.open({str(tmp_path)!r}).shard_for({record.run_id!r}))\n"
        )
        for seed in ("0", "7"):
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, check=True,
                env={"PYTHONHASHSEED": seed, "PYTHONPATH": "src"}, cwd=".",
            )
            assert result.stdout.strip() == record.shard


class TestEpochs:
    def test_record_bumps_only_its_own_shard(self, captured_example, tmp_path):
        warehouse = Warehouse.open(tmp_path)
        warehouse.init_shards(3)
        before = warehouse.epoch_vector()
        record = warehouse.record(captured_example, name="example")
        after = warehouse.epoch_vector()
        assert after[record.shard] == before[record.shard] + 1
        assert {
            shard: epoch for shard, epoch in after.items() if shard != record.shard
        } == {
            shard: epoch for shard, epoch in before.items() if shard != record.shard
        }

    def test_legacy_record_bumps_the_pseudo_shard(self, captured_example, tmp_path):
        warehouse = Warehouse.open(tmp_path)
        warehouse.record(captured_example, name="example")
        assert warehouse.epoch_vector() == {LEGACY_SHARD: 1}


class TestRebalance:
    def test_moves_runs_and_keeps_answers(
        self, captured_example, example_pattern, tmp_path
    ):
        warehouse = Warehouse.open(tmp_path)
        record = warehouse.record(captured_example, name="example")
        before = _answer(tmp_path, record.run_id, example_pattern)
        outcome = warehouse.rebalance(count=5)
        assert [move["run_id"] for move in outcome["moved"]] == [record.run_id]
        moved = outcome["moved"][0]
        assert moved["from"] is None and moved["to"].startswith("shard-")
        assert not (tmp_path / "runs" / record.run_id).exists()
        assert _answer(tmp_path, record.run_id, example_pattern) == before
        # Forward/audit queries resolve through the same record.
        report = Warehouse.open(tmp_path).forward(record.run_id, 'root{//id_str="lp"}')
        assert report.output_ids

    def test_rebalance_bumps_source_and_target_epochs(
        self, captured_example, tmp_path
    ):
        warehouse = Warehouse.open(tmp_path)
        warehouse.init_shards(2)
        record = warehouse.record(captured_example, name="example")
        before = warehouse.epoch_vector()
        outcome = warehouse.rebalance(count=6)
        moves = {move["run_id"]: move for move in outcome["moved"]}
        after = warehouse.epoch_vector()
        if record.run_id in moves:
            move = moves[record.run_id]
            assert after[move["from"]] == before[move["from"]] + 1
            assert after[move["to"]] == before.get(move["to"], 0) + 1
        else:
            assert after == {**{name: 0 for name in after}, **before}

    def test_rebalance_is_idempotent(self, captured_example, tmp_path):
        warehouse = Warehouse.open(tmp_path)
        warehouse.init_shards(4)
        warehouse.record(captured_example, name="example")
        warehouse.rebalance()
        again = warehouse.rebalance()
        assert again["moved"] == []
        assert again["unmoved"] == 1


class TestSubSharding:
    def test_segment_ranges_do_not_change_answers(
        self, captured_example, example_pattern, tmp_path
    ):
        plain = Warehouse.open(tmp_path / "plain")
        sharded = Warehouse.open(tmp_path / "ranged")
        a = plain.record(captured_example, name="example")
        b = sharded.record(captured_example, name="example", sub_shard_span=4)
        ops = sharded.run_dir(b.run_id) / "ops"
        ranges = sorted(path.name for path in ops.iterdir() if path.is_dir())
        assert ranges and all(name.startswith("range-") for name in ranges)
        assert _answer(tmp_path / "plain", a.run_id, example_pattern) == _answer(
            tmp_path / "ranged", b.run_id, example_pattern
        )

    def test_manifest_records_the_span(self, captured_example, tmp_path):
        warehouse = Warehouse.open(tmp_path)
        record = warehouse.record(captured_example, name="example", sub_shard_span=4)
        manifest = json.loads(
            (warehouse.run_dir(record.run_id) / "manifest.json").read_text()
        )
        assert manifest["sub_shards"]["span"] == 4
        assert manifest["sub_shards"]["ranges"]


class TestShardSummary:
    def test_summary_totals_match_the_catalog(self, captured_example, tmp_path):
        warehouse = Warehouse.open(tmp_path)
        warehouse.init_shards(2)
        record = warehouse.record(captured_example, name="example")
        summary = {entry["shard"]: entry for entry in warehouse.shard_summary()}
        assert summary[record.shard]["runs"] == 1
        assert summary[record.shard]["rows"] == record.row_count
        assert summary[record.shard]["run_ids"] == [record.run_id]
        # The legacy pseudo-shard is hidden once everything is sharded.
        assert LEGACY_SHARD not in summary
