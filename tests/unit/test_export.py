"""Unit tests for the DOT export of plans and provenance."""

from repro.pebble.export import plan_to_dot, provenance_to_dot
from repro.pebble.query import query_provenance
from repro.workloads.scenarios import (
    RUNNING_EXAMPLE_PATTERN,
    build_running_example,
)


class TestPlanToDot:
    def test_all_operators_present(self, session, example_tweets):
        pipeline = build_running_example(session, example_tweets)
        dot = plan_to_dot(pipeline.plan)
        assert dot.startswith("digraph pipeline {")
        assert dot.rstrip().endswith("}")
        for oid in range(1, 10):
            assert f"op{oid} " in dot
        # Union has two incoming edges.
        assert "op3 -> op7;" in dot
        assert "op6 -> op7;" in dot

    def test_labels_escaped(self, session):
        from repro.engine.expressions import col

        ds = session.create_dataset([{"a": 'x"y'}], "in").filter(col("a") == 'x"y')
        dot = plan_to_dot(ds.plan)
        assert '\\"' in dot


class TestProvenanceToDot:
    def test_contributing_and_influencing_styles(self, captured_example):
        provenance = query_provenance(captured_example, RUNNING_EXAMPLE_PATTERN)
        dot = provenance_to_dot(provenance)
        assert "subgraph cluster_0" in dot
        assert '"tweets.json (operator 1)"' in dot
        # Contributing nodes solid, influencing nodes dashed.
        assert 'style=filled, fillcolor="#c8e6c9"' in dot
        assert 'style="filled,dashed"' in dot
        # Access/manipulation marks are carried into labels.
        assert "A=2" in dot  # retweet_count accessed by the filter

    def test_empty_sources_render(self, captured_example):
        provenance = query_provenance(captured_example, 'root{//id_str="nobody"}')
        dot = provenance_to_dot(provenance)
        assert dot.count("subgraph") == 2  # both reads, both empty
