"""Unit tests for logical plan nodes and their capture metadata (Tab. 5)."""

import pytest

from repro.core.paths import parse_path
from repro.engine.expressions import col, collect_list, count, struct_, sum_
from repro.engine.plan import (
    AggregateNode,
    FilterNode,
    FlattenNode,
    JoinNode,
    MapNode,
    ReadNode,
    SelectNode,
    UnionNode,
    collection_element_path,
)
from repro.errors import PlanError


def _read(oid=1):
    return ReadNode(oid, "in", lambda: [])


class TestCollectionElementPath:
    def test_appends_placeholder(self):
        assert str(collection_element_path(parse_path("user_mentions"))) == "user_mentions[pos]"

    def test_nested_collection_path(self):
        assert str(collection_element_path(parse_path("entities.urls"))) == "entities.urls[pos]"

    def test_empty_rejected(self):
        with pytest.raises(PlanError):
            collection_element_path(parse_path(""))

    def test_positional_rejected(self):
        with pytest.raises(PlanError):
            collection_element_path(parse_path("a[1]"))


class TestFilterNode:
    def test_accessed_paths(self):
        node = FilterNode(2, _read(), col("retweet_count") == 0)
        assert {str(path) for path in node.accessed_paths()} == {"retweet_count"}

    def test_no_manipulations(self):
        node = FilterNode(2, _read(), col("a") == 1)
        assert node.manipulation_pairs() == []


class TestSelectNode:
    def test_manipulation_pairs(self):
        node = SelectNode(2, _read(), [col("user.id_str"), col("text")])
        rendered = [(str(a), str(b)) for a, b in node.manipulation_pairs()]
        assert rendered == [("user.id_str", "id_str"), ("text", "text")]

    def test_struct_projection_pairs(self):
        node = SelectNode(
            2, _read(), [struct_(id_str=col("id_str"), name=col("name")).alias("user")]
        )
        rendered = [(str(a), str(b)) for a, b in node.manipulation_pairs()]
        assert ("id_str", "user.id_str") in rendered

    def test_duplicate_output_names_rejected(self):
        with pytest.raises(PlanError, match="duplicate"):
            SelectNode(2, _read(), [col("a.x"), col("b.x")])

    def test_empty_select_rejected(self):
        with pytest.raises(PlanError):
            SelectNode(2, _read(), [])

    def test_accessed_paths(self):
        node = SelectNode(2, _read(), [col("user.id_str"), (col("a") + col("b")).alias("s")])
        assert {str(path) for path in node.accessed_paths()} == {"user.id_str", "a", "b"}


class TestFlattenNode:
    def test_metadata(self):
        node = FlattenNode(2, _read(), "user_mentions", "m_user")
        assert {str(path) for path in node.accessed_paths()} == {"user_mentions[pos]"}
        [(path_in, path_out)] = node.manipulation_pairs()
        assert str(path_in) == "user_mentions[pos]"
        assert str(path_out) == "m_user"

    def test_validation(self):
        with pytest.raises(PlanError):
            FlattenNode(2, _read(), "", "x")
        with pytest.raises(PlanError):
            FlattenNode(2, _read(), "a", "")


class TestAggregateNode:
    def test_nested_collect_pairs_carry_placeholder(self):
        node = AggregateNode(
            2, _read(), [col("user")], [collect_list(col("tweet")).alias("tweets")]
        )
        [(path_in, path_out)] = node.manipulation_pairs()
        assert str(path_in) == "tweet"
        assert str(path_out) == "tweets[pos]"
        assert path_out.has_placeholder()

    def test_struct_collect_maps_fields(self):
        node = AggregateNode(
            2,
            _read(),
            [col("grp")],
            [collect_list(struct_(t=col("text"), r=col("rts"))).alias("items")],
        )
        rendered = [(str(a), str(b)) for a, b in node.manipulation_pairs()]
        assert ("text", "items[pos].t") in rendered
        assert ("rts", "items[pos].r") in rendered

    def test_scalar_aggregate_pairs(self):
        node = AggregateNode(2, _read(), [col("grp")], [sum_(col("val")).alias("total")])
        rendered = [(str(a), str(b)) for a, b in node.manipulation_pairs()]
        assert rendered == [("val", "total")]

    def test_identity_keys_not_in_manipulations(self):
        node = AggregateNode(2, _read(), [col("grp")], [count()])
        assert all(str(out) != "grp" for _, out in node.manipulation_pairs())

    def test_renaming_key_recorded(self):
        node = AggregateNode(2, _read(), [col("user.id_str").alias("uid")], [count()])
        rendered = [(str(a), str(b)) for a, b in node.manipulation_pairs()]
        assert ("user.id_str", "uid") in rendered

    def test_accessed_paths_cover_keys_and_aggregates(self):
        node = AggregateNode(
            2, _read(), [col("grp")], [sum_(col("val")), collect_list(col("label"))]
        )
        assert {str(path) for path in node.accessed_paths()} == {"grp", "val", "label"}

    def test_needs_aggregate(self):
        with pytest.raises(PlanError):
            AggregateNode(2, _read(), [col("grp")], [])

    def test_duplicate_outputs_rejected(self):
        with pytest.raises(PlanError, match="duplicate"):
            AggregateNode(
                2, _read(), [col("x")], [sum_(col("a")).alias("x")]
            )


class TestDagWalk:
    def test_walk_topological_children_first(self):
        read = _read(1)
        filter_node = FilterNode(2, read, col("a") == 1)
        select_node = SelectNode(3, filter_node, [col("a")])
        order = [node.oid for node in select_node.walk()]
        assert order == [1, 2, 3]

    def test_walk_shared_child_visited_once(self):
        read = _read(1)
        left = FilterNode(2, read, col("a") == 1)
        right = FilterNode(3, read, col("a") == 2)
        union = UnionNode(4, left, right)
        order = [node.oid for node in union.walk()]
        assert order.count(1) == 1
        assert order.index(1) < order.index(2)

    def test_labels(self):
        read = _read(1)
        assert read.label() == "read in"
        assert "filter" in FilterNode(2, read, col("a") == 1).label()
        assert MapNode(3, read, lambda item: item, "udf").label() == "map udf"
        assert "join" in JoinNode(4, read, _read(5), col("a") == col("b")).label()
