"""Unit tests for the engine configuration object."""

import dataclasses

import pytest

from repro.engine.config import (
    ALL_RULES,
    DEFAULT_NUM_PARTITIONS,
    EngineConfig,
    resolve_partitions,
)
from repro.engine.session import Session
from repro.errors import ExecutionError


class TestDefaults:
    def test_default_values(self):
        config = EngineConfig()
        assert config.num_partitions == DEFAULT_NUM_PARTITIONS == 4
        assert config.scheduler == "serial"
        assert config.max_workers is None
        assert config.optimize is True
        assert config.rules == ALL_RULES

    def test_immutable(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            EngineConfig().num_partitions = 8

    def test_resolve_partitions(self):
        assert resolve_partitions(None) == DEFAULT_NUM_PARTITIONS
        assert resolve_partitions(7) == 7


class TestValidation:
    def test_rejects_zero_partitions(self):
        with pytest.raises(ExecutionError, match="at least one partition"):
            EngineConfig(num_partitions=0)

    def test_rejects_unknown_scheduler(self):
        with pytest.raises(ExecutionError, match="unknown scheduler"):
            EngineConfig(scheduler="mesos")

    def test_rejects_unknown_rule(self):
        with pytest.raises(ExecutionError, match="unknown optimizer rules"):
            EngineConfig(rules=("prune", "vectorize"))

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ExecutionError, match="max_workers"):
            EngineConfig(max_workers=0)


class TestRuleToggles:
    def test_rule_enabled_honours_subset(self):
        config = EngineConfig(rules=("prune",))
        assert config.rule_enabled("prune")
        assert not config.rule_enabled("fuse")
        assert not config.rule_enabled("pushdown")

    def test_optimize_off_disables_every_rule(self):
        config = EngineConfig(optimize=False)
        assert not any(config.rule_enabled(rule) for rule in ALL_RULES)

    def test_with_partitions(self):
        config = EngineConfig()
        assert config.with_partitions(None) is config
        assert config.with_partitions(4) is config
        assert config.with_partitions(2).num_partitions == 2


class TestFromEnv:
    def test_environment_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEDULER", "threads")
        monkeypatch.setenv("REPRO_OPTIMIZE", "off")
        monkeypatch.setenv("REPRO_MAX_WORKERS", "3")
        config = EngineConfig.from_env()
        assert config.scheduler == "threads"
        assert config.optimize is False
        assert config.max_workers == 3

    def test_explicit_overrides_beat_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEDULER", "threads")
        assert EngineConfig.from_env(scheduler="serial").scheduler == "serial"

    def test_partition_count_not_read_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEDULER", "threads")
        assert EngineConfig.from_env().num_partitions == DEFAULT_NUM_PARTITIONS


class TestSessionIntegration:
    def test_session_defaults_to_engine_default(self):
        assert Session().num_partitions == DEFAULT_NUM_PARTITIONS

    def test_session_override_wins_over_config(self):
        session = Session(num_partitions=2, config=EngineConfig(num_partitions=8))
        assert session.num_partitions == 2

    def test_session_carries_config(self):
        config = EngineConfig(scheduler="threads", optimize=False)
        session = Session(config=config)
        assert session.config.scheduler == "threads"
        assert session.config.optimize is False
