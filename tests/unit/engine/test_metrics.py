"""Unit tests for the per-run metric containers (engine.metrics)."""

from repro.engine.metrics import (
    ExecutionMetrics,
    SegmentCacheMetrics,
    StageMetrics,
    Stopwatch,
)
from repro.obs.metrics import ROWS_BUCKETS, MetricsRegistry


class TestStopwatch:
    def test_reentry_accumulates(self, monkeypatch):
        """Re-entering the same instance adds to ``elapsed``, never resets it."""
        ticks = iter([10.0, 13.0, 20.0, 22.0])
        monkeypatch.setattr(
            "repro.engine.metrics.time.perf_counter", lambda: next(ticks)
        )
        watch = Stopwatch()
        with watch:
            pass
        assert watch.elapsed == 3.0
        with watch:
            pass
        assert watch.elapsed == 5.0

    def test_accumulates_through_exceptions(self, monkeypatch):
        ticks = iter([0.0, 1.0])
        monkeypatch.setattr(
            "repro.engine.metrics.time.perf_counter", lambda: next(ticks)
        )
        watch = Stopwatch()
        try:
            with watch:
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert watch.elapsed == 1.0


class TestExecutionMetricsJson:
    def test_operator_rows_carry_capture_seconds(self):
        metrics = ExecutionMetrics()
        slot = metrics.operator(3, "filter", "filter(x)")
        slot.rows_in, slot.rows_out = 6, 4
        slot.seconds = 0.5
        slot.capture_seconds = 0.125
        (row,) = metrics.to_json()["operators"]
        assert row["capture_seconds"] == 0.125
        assert row["seconds"] == 0.5

    def test_top_level_shape_is_stable(self):
        payload = ExecutionMetrics().to_json()
        assert set(payload) == {
            "total_seconds",
            "scheduler",
            "layout",
            "operators",
            "stages",
        }
        assert set(payload["layout"]) == {
            "name",
            "partition_bytes",
            "kernel_ops",
            "fallback_ops",
        }
        assert set(payload["scheduler"]) == {
            "backend",
            "task_attempts",
            "task_retries",
            "task_timeouts",
            "worker_losses",
        }


class TestStageMetrics:
    def test_to_json_includes_partition_rows(self):
        stage = StageMetrics(1, "fused", "filter|select", (2, 3))
        stage.rows_in, stage.rows_out = 6, 4
        stage.partition_rows = (3, 1)
        payload = stage.to_json()
        assert payload["partition_rows"] == [3, 1]
        assert payload["operators"] == [2, 3]

    def test_publish_observes_skew_per_partition(self):
        registry = MetricsRegistry()
        stage = StageMetrics(0, "read", "read", (1,))
        stage.rows_out = 10
        stage.partition_rows = (7, 3)
        stage.publish(registry)
        skew = registry.histogram(
            "repro_stage_partition_rows", buckets=ROWS_BUCKETS, kind="read"
        )
        assert skew.count == 2
        assert skew.sum == 10
        assert registry.counter("repro_stage_rows_out_total", kind="read").value == 10


class TestSegmentCacheMetrics:
    def test_to_json_carries_every_counter_and_hit_rate(self):
        metrics = SegmentCacheMetrics()
        metrics.hits, metrics.misses = 3, 1
        metrics.item_hits, metrics.item_misses = 2, 2
        metrics.bytes_read, metrics.evictions = 4096, 1
        assert metrics.to_json() == {
            "hits": 3,
            "misses": 1,
            "item_hits": 2,
            "item_misses": 2,
            "bytes_read": 4096,
            "evictions": 1,
            "hit_rate": 0.75,
        }

    def test_publish_folds_into_registry(self):
        registry = MetricsRegistry()
        metrics = SegmentCacheMetrics()
        metrics.misses, metrics.bytes_read = 4, 1024
        metrics.publish(registry)
        metrics.publish(registry)  # two queries accumulate
        assert registry.counter("repro_segment_cache_misses_total").value == 8
        assert registry.counter("repro_segment_cache_bytes_read_total").value == 2048


class TestExecutionMetricsPublish:
    def test_run_counters_and_per_type_latencies(self):
        registry = MetricsRegistry()
        metrics = ExecutionMetrics()
        metrics.total_seconds = 0.25
        slot = metrics.operator(1, "filter", "filter(x)")
        slot.rows_out = 5
        slot.seconds = 0.1
        slot.capture_seconds = 0.01
        metrics.publish(registry)
        assert registry.counter("repro_runs_total").value == 1
        assert registry.histogram("repro_run_seconds").count == 1
        assert (
            registry.counter("repro_operator_rows_out_total", op_type="filter").value
            == 5
        )
        assert registry.counter("repro_capture_seconds_total").value == 0.01
