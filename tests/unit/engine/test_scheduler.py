"""Unit tests for the scheduler backends (order, errors, retry, lifecycle)."""

import functools
import os
import threading
import time
from pathlib import Path

import pytest

from repro.engine.config import EngineConfig
from repro.engine.scheduler import (
    ProcessPoolScheduler,
    RetryPolicy,
    SerialScheduler,
    ThreadPoolScheduler,
    backoff_schedule,
    make_scheduler,
)
from repro.errors import ExecutionError, TaskTimeoutError, TransientError


def _return_value(value):
    """Module-level so the process pool can pickle it by reference."""
    return value


def _crash_once(marker):
    """Kill the worker process on the first call, succeed afterwards."""
    path = Path(marker)
    if not path.exists():
        path.write_text("crashed")
        os._exit(1)
    return "survived"


def _sleep_then_return(seconds, value):
    time.sleep(seconds)
    return value


@pytest.fixture(params=["serial", "threads"])
def scheduler(request):
    backend = make_scheduler(EngineConfig(scheduler=request.param))
    yield backend
    backend.close()


class TestBothBackends:
    def test_results_in_submission_order(self, scheduler):
        def task(index):
            def run():
                time.sleep(0.002 * (5 - index))  # later tasks finish first
                return index

            return run

        assert scheduler.run([task(index) for index in range(5)]) == list(range(5))

    def test_empty_batch(self, scheduler):
        assert scheduler.run([]) == []

    def test_first_error_in_submission_order_wins(self, scheduler):
        def failer(message, delay):
            def run():
                time.sleep(delay)
                raise ValueError(message)

            return run

        # The second task fails *first* in wall-clock time, but the raised
        # error must be the first failing task in submission order.
        with pytest.raises(ValueError, match="first"):
            scheduler.run([failer("first", 0.01), failer("second", 0.0)])


class TestThreadPool:
    def test_runs_concurrently(self):
        backend = ThreadPoolScheduler(max_workers=4)
        try:
            seen = set()

            def run():
                seen.add(threading.current_thread().name)
                time.sleep(0.01)

            backend.run([run for _ in range(8)])
            assert len(seen) > 1
        finally:
            backend.close()

    def test_closed_scheduler_rejects_work(self):
        backend = ThreadPoolScheduler(max_workers=1)
        backend.close()
        backend.close()  # idempotent
        with pytest.raises(ExecutionError, match="closed"):
            backend.run([lambda: 1])

    def test_context_manager_closes(self):
        with ThreadPoolScheduler(max_workers=1) as backend:
            assert backend.run([lambda: 42]) == [42]
        with pytest.raises(ExecutionError):
            backend.run([lambda: 1])


class TestBackoffSchedule:
    def test_jitter_free_exponential_sequence(self):
        policy = RetryPolicy(max_retries=4, backoff=0.05, factor=2.0, max_delay=2.0)
        assert backoff_schedule(policy) == [0.05, 0.1, 0.2, 0.4]

    def test_max_delay_caps_the_tail(self):
        policy = RetryPolicy(max_retries=6, backoff=0.5, factor=2.0, max_delay=2.0)
        assert backoff_schedule(policy) == [0.5, 1.0, 2.0, 2.0, 2.0, 2.0]

    def test_zero_backoff_means_no_sleeping(self):
        policy = RetryPolicy(max_retries=3, backoff=0.0)
        assert backoff_schedule(policy) == [0.0, 0.0, 0.0]

    def test_zero_retries_means_empty_schedule(self):
        assert backoff_schedule(RetryPolicy(max_retries=0)) == []

    def test_run_sleeps_the_exact_schedule(self, monkeypatch):
        slept = []
        monkeypatch.setattr(
            "repro.engine.scheduler.time.sleep", lambda seconds: slept.append(seconds)
        )
        policy = RetryPolicy(max_retries=3, backoff=0.05, factor=2.0)
        backend = SerialScheduler(policy=policy)

        def always_transient():
            raise TransientError("boom")

        with pytest.raises(TransientError):
            backend.run([always_transient])
        assert slept == backoff_schedule(policy)


class TestRetries:
    def _serial(self, **kwargs):
        kwargs.setdefault("backoff", 0.0)
        return SerialScheduler(policy=RetryPolicy(**kwargs))

    def test_transient_failure_heals_on_retry(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) == 1:
                raise TransientError("transient hiccup")
            return "ok"

        backend = self._serial(max_retries=2)
        assert backend.run([flaky]) == ["ok"]
        assert len(calls) == 2
        assert backend.stats.attempts == 2
        assert backend.stats.retries == 1

    def test_budget_exhaustion_raises_the_original_error(self):
        attempts = []

        def always_failing():
            attempts.append(1)
            raise TransientError(f"failure number {len(attempts)}")

        backend = self._serial(max_retries=2)
        with pytest.raises(TransientError, match="failure number 1"):
            backend.run([always_failing])
        assert len(attempts) == 3  # 1 attempt + 2 retries
        assert backend.stats.attempts == 3
        assert backend.stats.retries == 2

    def test_non_retryable_errors_fail_fast(self):
        calls = []

        def broken():
            calls.append(1)
            raise ValueError("deterministic bug")

        backend = self._serial(max_retries=5)
        with pytest.raises(ValueError, match="deterministic bug"):
            backend.run([broken])
        assert len(calls) == 1
        assert backend.stats.retries == 0

    def test_only_failed_tasks_are_retried(self):
        calls = {"good": 0, "flaky": 0}

        def good():
            calls["good"] += 1
            return "good"

        def flaky():
            calls["flaky"] += 1
            if calls["flaky"] == 1:
                raise TransientError("once")
            return "flaky"

        backend = self._serial(max_retries=2)
        assert backend.run([good, flaky]) == ["good", "flaky"]
        assert calls == {"good": 1, "flaky": 2}

    def test_attempt_numbers_are_stamped_on_tasks(self):
        class Recording:
            def __init__(self):
                self.attempt = 0
                self.seen = []

            def __call__(self):
                self.seen.append(self.attempt)
                raise TransientError("again")

        task = Recording()
        backend = self._serial(max_retries=2)
        with pytest.raises(TransientError):
            backend.run([task])
        assert task.seen == [1, 2, 3]


class TestTimeouts:
    def test_serial_detects_overrun_post_hoc(self):
        backend = SerialScheduler(
            policy=RetryPolicy(max_retries=1, backoff=0.0, task_timeout=0.005)
        )
        with pytest.raises(TaskTimeoutError, match="budget"):
            backend.run([functools.partial(_sleep_then_return, 0.03, "late")])
        # Post-hoc detection still runs the task once per attempt.
        assert backend.stats.attempts == 2
        assert backend.stats.timeouts == 2
        assert backend.stats.retries == 1

    def test_thread_pool_enforces_timeout_on_the_future(self):
        backend = ThreadPoolScheduler(
            max_workers=2,
            policy=RetryPolicy(max_retries=0, backoff=0.0, task_timeout=0.02),
        )
        try:
            with pytest.raises(TaskTimeoutError, match="budget"):
                backend.run([functools.partial(_sleep_then_return, 0.5, "late")])
            assert backend.stats.timeouts == 1
        finally:
            backend.close()

    def test_fast_tasks_are_unaffected_by_the_budget(self):
        backend = SerialScheduler(policy=RetryPolicy(task_timeout=5.0))
        assert backend.run([functools.partial(_return_value, 3)]) == [3]
        assert backend.stats.timeouts == 0


class TestProcessPool:
    def test_runs_picklable_tasks(self):
        backend = ProcessPoolScheduler(
            max_workers=1, policy=RetryPolicy(backoff=0.0)
        )
        try:
            tasks = [functools.partial(_return_value, index) for index in range(3)]
            assert backend.run(tasks) == [0, 1, 2]
        finally:
            backend.close()

    def test_worker_death_is_transient_and_pool_rebuilds(self, tmp_path):
        marker = tmp_path / "crashed.marker"
        backend = ProcessPoolScheduler(
            max_workers=1, policy=RetryPolicy(max_retries=2, backoff=0.0)
        )
        try:
            result = backend.run([functools.partial(_crash_once, str(marker))])
            assert result == ["survived"]
            assert backend.stats.worker_losses >= 1
            assert backend.stats.retries >= 1
        finally:
            backend.close()

    def test_unpicklable_task_fails_without_retry(self):
        backend = ProcessPoolScheduler(
            max_workers=1, policy=RetryPolicy(max_retries=3, backoff=0.0)
        )
        try:
            with pytest.raises(Exception) as excinfo:
                backend.run([lambda: 1])
            assert not getattr(excinfo.value, "retryable", False)
        finally:
            backend.close()

    def test_closed_scheduler_rejects_work(self):
        backend = ProcessPoolScheduler(max_workers=1)
        backend.close()
        with pytest.raises(ExecutionError, match="closed"):
            backend.run([functools.partial(_return_value, 1)])


class TestFactory:
    def test_selects_backend(self):
        assert isinstance(make_scheduler(EngineConfig()), SerialScheduler)
        threaded = make_scheduler(EngineConfig(scheduler="threads"))
        try:
            assert isinstance(threaded, ThreadPoolScheduler)
        finally:
            threaded.close()
        with make_scheduler(EngineConfig(scheduler="processes")) as pooled:
            assert isinstance(pooled, ProcessPoolScheduler)

    def test_policy_comes_from_config(self):
        backend = make_scheduler(
            EngineConfig(max_retries=7, retry_backoff=0.25, task_timeout=3.0)
        )
        assert backend.policy.max_retries == 7
        assert backend.policy.backoff == 0.25
        assert backend.policy.task_timeout == 3.0
