"""Unit tests for the scheduler backends (order, errors, lifecycle)."""

import threading
import time

import pytest

from repro.engine.config import EngineConfig
from repro.engine.scheduler import (
    SerialScheduler,
    ThreadPoolScheduler,
    make_scheduler,
)
from repro.errors import ExecutionError


@pytest.fixture(params=["serial", "threads"])
def scheduler(request):
    backend = make_scheduler(EngineConfig(scheduler=request.param))
    yield backend
    backend.close()


class TestBothBackends:
    def test_results_in_submission_order(self, scheduler):
        def task(index):
            def run():
                time.sleep(0.002 * (5 - index))  # later tasks finish first
                return index

            return run

        assert scheduler.run([task(index) for index in range(5)]) == list(range(5))

    def test_empty_batch(self, scheduler):
        assert scheduler.run([]) == []

    def test_first_error_in_submission_order_wins(self, scheduler):
        def failer(message, delay):
            def run():
                time.sleep(delay)
                raise ValueError(message)

            return run

        # The second task fails *first* in wall-clock time, but the raised
        # error must be the first failing task in submission order.
        with pytest.raises(ValueError, match="first"):
            scheduler.run([failer("first", 0.01), failer("second", 0.0)])


class TestThreadPool:
    def test_runs_concurrently(self):
        backend = ThreadPoolScheduler(max_workers=4)
        try:
            seen = set()

            def run():
                seen.add(threading.current_thread().name)
                time.sleep(0.01)

            backend.run([run for _ in range(8)])
            assert len(seen) > 1
        finally:
            backend.close()

    def test_closed_scheduler_rejects_work(self):
        backend = ThreadPoolScheduler(max_workers=1)
        backend.close()
        backend.close()  # idempotent
        with pytest.raises(ExecutionError, match="closed"):
            backend.run([lambda: 1])

    def test_context_manager_closes(self):
        with ThreadPoolScheduler(max_workers=1) as backend:
            assert backend.run([lambda: 42]) == [42]
        with pytest.raises(ExecutionError):
            backend.run([lambda: 1])


class TestFactory:
    def test_selects_backend(self):
        assert isinstance(make_scheduler(EngineConfig()), SerialScheduler)
        threaded = make_scheduler(EngineConfig(scheduler="threads"))
        try:
            assert isinstance(threaded, ThreadPoolScheduler)
        finally:
            threaded.close()
