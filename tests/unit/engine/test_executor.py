"""Unit tests for the executor: plain semantics and capture per operator."""

import pytest

from repro.core.operator_provenance import (
    AggregationAssociations,
    BinaryAssociations,
    FlattenAssociations,
    ReadAssociations,
    UnaryAssociations,
)
from repro.engine.executor import Executor
from repro.engine.expressions import col, collect_list, collect_set, count, struct_, sum_
from repro.engine.session import Session
from repro.errors import ExecutionError, PlanError, SchemaMismatchError
from repro.nested.values import Bag, DataItem, NestedSet


@pytest.fixture
def session():
    return Session(num_partitions=3)


def _items(dataset):
    return dataset.collect()


class TestRead:
    def test_items_and_order(self, session):
        data = [{"a": index} for index in range(7)]
        assert _items(session.create_dataset(data, "in")) == [DataItem(a=index) for index in range(7)]

    def test_capture_assigns_sequential_ids(self, session):
        ds = session.create_dataset([{"a": 1}, {"a": 2}], "in")
        execution = ds.execute(capture=True)
        assert [pid for pid, _ in execution.rows()] == [1, 2]
        provenance = execution.store.get(ds.plan.oid)
        assert isinstance(provenance.associations, ReadAssociations)
        assert execution.store.source_items(ds.plan.oid)[2] == DataItem(a=2)


class TestFilter:
    def test_semantics(self, session):
        ds = session.create_dataset([{"a": 1}, {"a": 2}, {"a": 3}], "in")
        kept = _items(ds.filter(col("a") >= 2))
        assert [item["a"] for item in kept] == [2, 3]

    def test_capture_associations(self, session):
        ds = session.create_dataset([{"a": 1}, {"a": 2}], "in").filter(col("a") == 2)
        execution = ds.execute(capture=True)
        provenance = execution.store.get(ds.plan.oid)
        assert isinstance(provenance.associations, UnaryAssociations)
        assert provenance.associations.records == [(2, 3)]
        assert {str(p) for p in provenance.input(0).accessed} == {"a"}
        assert provenance.manipulations_or_empty() == ()


class TestSelect:
    def test_projection_and_rename(self, session):
        ds = session.create_dataset([{"user": {"id_str": "lp"}, "x": 1}], "in")
        out = _items(ds.select(col("user.id_str").alias("uid"), col("x")))
        assert out == [DataItem(uid="lp", x=1)]

    def test_struct_output(self, session):
        ds = session.create_dataset([{"a": 1, "b": 2}], "in")
        out = _items(ds.select(struct_(a=col("a")).alias("s"), col("b")))
        assert out == [DataItem(s=DataItem(a=1), b=2)]

    def test_missing_attribute_yields_null(self, session):
        ds = session.create_dataset([{"a": 1}], "in")
        assert _items(ds.select(col("missing")))[0]["missing"] is None

    def test_capture_manipulations(self, session):
        ds = session.create_dataset([{"user": {"id_str": "lp"}}], "in").select(col("user.id_str"))
        execution = ds.execute(capture=True)
        provenance = execution.store.get(ds.plan.oid)
        rendered = [(str(a), str(b)) for a, b in provenance.manipulations_or_empty()]
        assert rendered == [("user.id_str", "id_str")]


class TestMap:
    def test_semantics_and_coercion(self, session):
        ds = session.create_dataset([{"a": 2}], "in").map(lambda item: {"b": item["a"] * 2})
        assert _items(ds) == [DataItem(b=4)]

    def test_non_item_result_rejected(self, session):
        ds = session.create_dataset([{"a": 2}], "in").map(lambda item: 42)
        with pytest.raises(ExecutionError, match="must return a data item"):
            ds.collect()

    def test_udf_error_wrapped(self, session):
        def boom(item):
            raise ValueError("boom")

        ds = session.create_dataset([{"a": 1}], "in").map(boom, "boom")
        with pytest.raises(ExecutionError, match="boom"):
            ds.collect()

    def test_capture_marks_undefined(self, session):
        ds = session.create_dataset([{"a": 1}], "in").map(lambda item: item)
        execution = ds.execute(capture=True)
        provenance = execution.store.get(ds.plan.oid)
        assert provenance.manipulations_undefined()
        assert provenance.input(0).schema is not None


class TestFlatten:
    def test_semantics_keep_original_attribute(self, session):
        ds = session.create_dataset([{"a": 1, "tags": ["x", "y"]}], "in").flatten("tags", "tag")
        out = _items(ds)
        assert [item["tag"] for item in out] == ["x", "y"]
        assert all(isinstance(item["tags"], Bag) for item in out)

    def test_empty_collection_dropped_by_default(self, session):
        ds = session.create_dataset([{"a": 1, "tags": []}], "in").flatten("tags", "tag")
        assert _items(ds) == []

    def test_outer_keeps_with_null(self, session):
        ds = session.create_dataset([{"a": 1, "tags": []}], "in").flatten("tags", "tag", outer=True)
        out = _items(ds)
        assert out[0]["tag"] is None

    def test_null_collection_treated_as_empty(self, session):
        ds = session.create_dataset([{"a": 1, "tags": None}], "in").flatten("tags", "tag")
        assert _items(ds) == []

    def test_non_collection_rejected(self, session):
        ds = session.create_dataset([{"tags": 5}], "in").flatten("tags", "tag")
        with pytest.raises(ExecutionError, match="not a collection"):
            ds.collect()

    def test_name_clash_rejected(self, session):
        ds = session.create_dataset([{"a": 1, "tags": ["x"]}], "in").flatten("tags", "a")
        with pytest.raises(PlanError, match="already exists"):
            ds.collect()

    def test_capture_positions(self, session):
        ds = session.create_dataset([{"tags": ["x", "y"]}], "in").flatten("tags", "tag")
        execution = ds.execute(capture=True)
        provenance = execution.store.get(ds.plan.oid)
        assert isinstance(provenance.associations, FlattenAssociations)
        assert [(id_in, pos) for id_in, pos, _ in provenance.associations.records] == [
            (1, 1),
            (1, 2),
        ]

    def test_flatten_set_attribute(self, session):
        ds = session.create_dataset([{"tags": {"b", "a"}}], "in").flatten("tags", "tag")
        assert sorted(item["tag"] for item in _items(ds)) == ["a", "b"]


class TestUnion:
    def test_semantics_order(self, session):
        left = session.create_dataset([{"a": 1}], "left")
        right = session.create_dataset([{"a": 2}], "right")
        assert [item["a"] for item in _items(left.union(right))] == [1, 2]

    def test_schema_mismatch_rejected(self, session):
        left = session.create_dataset([{"a": 1}], "left")
        right = session.create_dataset([{"a": "x"}], "right")
        with pytest.raises(SchemaMismatchError):
            left.union(right).collect()

    def test_capture_one_side_undefined(self, session):
        left = session.create_dataset([{"a": 1}], "left")
        right = session.create_dataset([{"a": 2}], "right")
        union = left.union(right)
        execution = union.execute(capture=True)
        provenance = execution.store.get(union.plan.oid)
        assert isinstance(provenance.associations, BinaryAssociations)
        sides = [(id1 is None, id2 is None) for id1, id2, _ in provenance.associations.records]
        assert sides == [(False, True), (True, False)]


class TestJoin:
    def test_equi_join(self, session):
        left = session.create_dataset([{"k": 1, "l": "a"}, {"k": 2, "l": "b"}], "left")
        right = session.create_dataset([{"fk": 2, "r": "x"}], "right")
        out = _items(left.join(right, col("k") == col("fk")))
        assert out == [DataItem(k=2, l="b", fk=2, r="x")]

    def test_theta_join_fallback(self, session):
        left = session.create_dataset([{"k": 1}, {"k": 5}], "left")
        right = session.create_dataset([{"t": 3}], "right")
        out = _items(left.join(right, col("k") > col("t")))
        assert out == [DataItem(k=5, t=3)]

    def test_name_clash_rejected(self, session):
        left = session.create_dataset([{"k": 1}], "left")
        right = session.create_dataset([{"k": 1}], "right")
        with pytest.raises(PlanError, match="share attribute names"):
            left.join(right, col("k") == col("k")).collect()

    def test_conjunctive_equi_join(self, session):
        left = session.create_dataset([{"k1": 1, "k2": "a"}, {"k1": 1, "k2": "b"}], "left")
        right = session.create_dataset([{"f1": 1, "f2": "b"}], "right")
        out = _items(
            left.join(right, (col("k1") == col("f1")) & (col("k2") == col("f2")))
        )
        assert [item["k2"] for item in out] == ["b"]

    def test_capture_condition_paths_per_side(self, session):
        left = session.create_dataset([{"k": 1}], "left")
        right = session.create_dataset([{"fk": 1}], "right")
        join = left.join(right, col("k") == col("fk"))
        execution = join.execute(capture=True)
        provenance = execution.store.get(join.plan.oid)
        assert {str(p) for p in provenance.input(0).accessed} == {"k"}
        assert {str(p) for p in provenance.input(1).accessed} == {"fk"}

    def test_join_duplicates_left_rows(self, session):
        left = session.create_dataset([{"k": 1, "l": "a"}], "left")
        right = session.create_dataset([{"fk": 1, "r": 1}, {"fk": 1, "r": 2}], "right")
        out = _items(left.join(right, col("k") == col("fk")))
        assert len(out) == 2


class TestAggregate:
    def test_group_and_collect(self, session):
        data = [
            {"grp": "a", "v": 1},
            {"grp": "b", "v": 2},
            {"grp": "a", "v": 3},
        ]
        ds = (
            session.create_dataset(data, "in")
            .group_by(col("grp"))
            .agg(collect_list(col("v")).alias("vs"), sum_(col("v")).alias("total"), count())
        )
        out = {item["grp"]: item for item in _items(ds)}
        assert out["a"]["vs"] == Bag([1, 3])
        assert out["a"]["total"] == 4
        assert out["a"]["count"] == 2
        assert out["b"]["total"] == 2

    def test_collect_preserves_input_order(self, session):
        data = [{"grp": 1, "v": index} for index in range(10)]
        ds = session.create_dataset(data, "in").group_by(col("grp")).agg(
            collect_list(col("v")).alias("vs")
        )
        assert _items(ds)[0]["vs"] == Bag(list(range(10)))

    def test_collect_set(self, session):
        data = [{"grp": 1, "v": "x"}, {"grp": 1, "v": "x"}, {"grp": 1, "v": "y"}]
        ds = session.create_dataset(data, "in").group_by(col("grp")).agg(
            collect_set(col("v")).alias("vs")
        )
        assert _items(ds)[0]["vs"] == NestedSet(["x", "y"])

    def test_struct_group_key(self, session):
        data = [
            {"user": {"id": "a"}, "v": 1},
            {"user": {"id": "a"}, "v": 2},
            {"user": {"id": "b"}, "v": 3},
        ]
        ds = session.create_dataset(data, "in").group_by(col("user")).agg(count())
        out = {item["user"]["id"]: item["count"] for item in _items(ds)}
        assert out == {"a": 2, "b": 1}

    def test_capture_group_member_ids_in_order(self, session):
        data = [{"grp": 1, "v": "x"}, {"grp": 1, "v": "y"}]
        ds = session.create_dataset(data, "in").group_by(col("grp")).agg(
            collect_list(col("v")).alias("vs")
        )
        execution = ds.execute(capture=True)
        provenance = execution.store.get(ds.plan.oid)
        assert isinstance(provenance.associations, AggregationAssociations)
        [(ids_in, _)] = provenance.associations.records
        assert ids_in == (1, 2)  # i-th id <-> i-th collected element


class TestExecutorInfrastructure:
    def test_shared_subplan_executes_once(self, session):
        base = session.create_dataset([{"a": 1}], "in")
        union = base.union(base)
        execution = union.execute(capture=True)
        # One read operator only: the same source id feeds both union sides.
        read_provenance = execution.store.get(base.plan.oid)
        assert len(read_provenance.associations) == 1
        assert len(execution) == 2

    def test_metrics_populated(self, session):
        ds = session.create_dataset([{"a": 1}], "in").filter(col("a") == 1)
        execution = ds.execute()
        labels = {metric.op_type for metric in execution.metrics.operators()}
        assert labels == {"read", "filter"}
        assert execution.metrics.total_seconds >= 0

    def test_invalid_partition_count(self):
        with pytest.raises(ExecutionError):
            Executor(0)

    def test_lineage_only_mode_drops_structure(self, session):
        ds = session.create_dataset([{"a": 1, "tags": ["x"]}], "in").flatten("tags", "t")
        execution = Executor(2, capture=True, lineage_only=True).execute(ds.plan)
        provenance = execution.store.get(ds.plan.oid)
        assert provenance.manipulations_or_empty() == ()
        assert provenance.input(0).accessed_or_empty() == frozenset()

    def test_single_partition(self):
        session = Session(num_partitions=1)
        ds = session.create_dataset([{"a": index} for index in range(5)], "in")
        assert len(ds.filter(col("a") > 2).collect()) == 2
