"""Unit tests for the extended operators: distinct, sort, limit, with_column.

Each operator is tested for plain semantics, capture content, and
backtracing behaviour, plus cross-validation against the full model.
"""

import pytest

from repro.core.backtrace.algorithms import Backtracer
from repro.core.model import FullModelInterpreter
from repro.core.paths import parse_path
from repro.core.treepattern.matcher import match_partitions, seed_structure
from repro.core.treepattern.parser import parse_pattern
from repro.engine.expressions import col
from repro.errors import PlanError
from repro.nested.values import DataItem


def _trace(execution, pattern_text):
    matches = match_partitions(parse_pattern(pattern_text), execution.partitions)
    seeds = seed_structure(matches)
    return Backtracer(execution.store).backtrace(execution.root.oid, seeds)


class TestDistinct:
    DATA = [{"a": 1, "b": "x"}, {"a": 1, "b": "x"}, {"a": 2, "b": "y"}]

    def test_semantics(self, session):
        out = session.create_dataset(self.DATA, "in").distinct().collect()
        assert out == [DataItem(a=1, b="x"), DataItem(a=2, b="y")]

    def test_all_duplicates_in_provenance(self, session):
        ds = session.create_dataset(self.DATA, "in").distinct()
        execution = ds.execute(capture=True)
        [source] = _trace(execution, "root{/a=1}")
        assert source.ids() == [1, 2]

    def test_attributes_accessed(self, session):
        ds = session.create_dataset(self.DATA, "in").distinct()
        execution = ds.execute(capture=True)
        [source] = _trace(execution, "root{/a=2}")
        tree = source.structure.tree(3)
        b_node = tree.find(parse_path("b"))
        assert b_node is not None and b_node.access == {ds.plan.oid}

    def test_full_model_agrees(self, session):
        ds = session.create_dataset(self.DATA, "in").distinct()
        full = FullModelInterpreter().run(ds.plan)
        assert sorted(map(repr, full[ds.plan.oid].items())) == sorted(
            map(repr, ds.collect())
        )
        # Two members back the deduplicated (a=1) item.
        entry = next(
            e for e in full[ds.plan.oid].entries if e.item["a"] == 1
        )
        assert len(entry.inputs) == 2


class TestSort:
    DATA = [{"a": 3}, {"a": 1}, {"a": None}, {"a": 2}]

    def test_ascending_nulls_first(self, session):
        out = session.create_dataset(self.DATA, "in").sort(col("a")).collect()
        assert [item["a"] for item in out] == [None, 1, 2, 3]

    def test_descending(self, session):
        out = session.create_dataset(self.DATA, "in").sort(col("a"), descending=True).collect()
        assert [item["a"] for item in out] == [3, 2, 1, None]

    def test_string_key_accepted(self, session):
        out = session.create_dataset(self.DATA, "in").sort("a").collect()
        assert [item["a"] for item in out] == [None, 1, 2, 3]

    def test_keys_marked_accessed(self, session):
        data = [{"a": 2, "b": "x"}, {"a": 1, "b": "y"}]
        ds = session.create_dataset(data, "in").sort(col("a"))
        execution = ds.execute(capture=True)
        [source] = _trace(execution, 'root{/b="x"}')
        tree = source.structure.tree(1)
        a_node = tree.find(parse_path("a"))
        assert a_node is not None
        assert not a_node.contributing
        assert a_node.access == {ds.plan.oid}

    def test_requires_keys(self, session):
        with pytest.raises(PlanError):
            session.create_dataset(self.DATA, "in").sort()

    def test_sort_is_stable(self, session):
        data = [{"k": 1, "tag": index} for index in range(6)]
        out = session.create_dataset(data, "in").sort(col("k")).collect()
        assert [item["tag"] for item in out] == list(range(6))


class TestLimit:
    def test_semantics(self, session):
        data = [{"a": index} for index in range(10)]
        out = session.create_dataset(data, "in").limit(3).collect()
        assert [item["a"] for item in out] == [0, 1, 2]

    def test_limit_zero(self, session):
        assert session.create_dataset([{"a": 1}], "in").limit(0).collect() == []

    def test_limit_beyond_size(self, session):
        assert len(session.create_dataset([{"a": 1}], "in").limit(99).collect()) == 1

    def test_negative_rejected(self, session):
        with pytest.raises(PlanError):
            session.create_dataset([{"a": 1}], "in").limit(-1)

    def test_backtrace(self, session):
        data = [{"a": index} for index in range(10)]
        ds = session.create_dataset(data, "in").sort(col("a"), descending=True).limit(2)
        execution = ds.execute(capture=True)
        [source] = _trace(execution, "root{/a}")
        assert source.ids() == [9, 10]  # the two largest values


class TestWithColumn:
    def test_adds_attribute(self, session):
        ds = session.create_dataset([{"a": 2, "b": 3}], "in").with_column(
            "total", col("a") + col("b")
        )
        assert ds.collect() == [DataItem(a=2, b=3, total=5)]

    def test_replaces_attribute(self, session):
        ds = session.create_dataset([{"a": 2}], "in").with_column("a", col("a") * 10)
        assert ds.collect() == [DataItem(a=20)]

    def test_backtrace_maps_to_inputs(self, session):
        ds = session.create_dataset([{"a": 2, "b": 3, "c": 9}], "in").with_column(
            "total", col("a") + col("b")
        )
        execution = ds.execute(capture=True)
        [source] = _trace(execution, "root{/total=5}")
        tree = source.structure.tree(1)
        assert tree.find(parse_path("a")) is not None
        assert tree.find(parse_path("b")) is not None
        assert tree.find(parse_path("total")) is None

    def test_untouched_attributes_pass_through(self, session):
        ds = session.create_dataset([{"a": 1, "keep": "k"}], "in").with_column(
            "extra", col("a")
        )
        execution = ds.execute(capture=True)
        [source] = _trace(execution, 'root{/keep="k"}')
        tree = source.structure.tree(1)
        keep = tree.find(parse_path("keep"))
        assert keep is not None and keep.contributing

    def test_empty_name_rejected(self, session):
        with pytest.raises(PlanError):
            session.create_dataset([{"a": 1}], "in").with_column("", col("a"))

    def test_full_model_agrees(self, session):
        ds = session.create_dataset([{"a": 2}], "in").with_column("d", col("a") + 1)
        full = FullModelInterpreter().run(ds.plan)
        assert full[ds.plan.oid].items() == ds.collect()


class TestComposition:
    def test_pipeline_mixing_all_new_operators(self, session):
        data = [{"grp": index % 3, "v": index} for index in range(12)]
        data.extend(dict(entry) for entry in data[:4])  # duplicates
        ds = (
            session.create_dataset(data, "in")
            .distinct()
            .with_column("doubled", col("v") * 2)
            .sort(col("doubled"), descending=True)
            .limit(4)
        )
        execution = ds.execute(capture=True)
        out = execution.items()
        assert [item["doubled"] for item in out] == [22, 20, 18, 16]
        [source] = _trace(execution, "root{/doubled=22}")
        assert source.ids() == [12]  # v=11 is the 12th input item
