"""Unit tests for logical->physical compilation (stages, fusion, schemas)."""

import pytest

from repro.engine.config import EngineConfig
from repro.engine.executor import Executor
from repro.engine.expressions import col, count
from repro.engine.hooks import StructuralCaptureHook
from repro.engine.optimizer import plan_physical
from repro.engine.physical import (
    FusedStage,
    LimitPrefixOp,
    PruneOp,
    ReadStage,
    SelectOp,
    WideStage,
)
from repro.engine.session import Session


@pytest.fixture
def session():
    return Session(num_partitions=2)


def _rows():
    return [{"a": index, "b": -index, "tags": ["x", "y"]} for index in range(8)]


def _compile(dataset, config=None, hooks=()):
    # Explicit EngineConfig() rather than the session's env-derived config,
    # so stage-shape expectations hold under REPRO_OPTIMIZE/REPRO_SCHEDULER.
    return plan_physical(dataset.plan, config or EngineConfig(), hooks)


class TestStageShapes:
    def test_read_only_plan_is_one_stage(self, session):
        physical = _compile(session.create_dataset(_rows(), "in"))
        assert [type(stage) for stage in physical.stages] == [ReadStage]

    def test_narrow_chain_fuses_into_one_stage(self, session):
        ds = (
            session.create_dataset(_rows(), "in")
            .filter(col("a") >= 2)
            .select(col("a"), col("tags"))
            .flatten("tags", "tag")
        )
        physical = _compile(ds)
        kinds = [stage.kind for stage in physical.stages]
        assert kinds == ["read", "fused"]
        fused = physical.stages[1]
        assert isinstance(fused, FusedStage)
        assert fused.logical_oids() == (2, 3, 4)

    def test_fusion_off_yields_one_stage_per_operator(self, session):
        ds = session.create_dataset(_rows(), "in").filter(col("a") >= 2).select(col("a"))
        physical = _compile(ds, EngineConfig(optimize=False))
        assert [stage.kind for stage in physical.stages] == ["read", "fused", "fused"]
        assert all(
            len(stage.ops) == 1
            for stage in physical.stages
            if isinstance(stage, FusedStage)
        )

    def test_wide_operators_break_the_pipeline(self, session):
        ds = (
            session.create_dataset(_rows(), "in")
            .filter(col("a") >= 1)
            .group_by(col("a"))
            .agg(count().alias("n"))
            .filter(col("n") >= 1)
        )
        physical = _compile(ds)
        kinds = [stage.kind for stage in physical.stages]
        assert kinds == ["read", "fused", "aggregate", "fused"]
        aggregate = physical.stages[2]
        assert isinstance(aggregate, WideStage)

    def test_stage_wiring_is_consistent(self, session):
        left = session.create_dataset(_rows(), "left").filter(col("a") >= 1)
        right = session.create_dataset(_rows(), "right").select(col("a"))
        physical = _compile(left.union(right))
        produced = set()
        for stage in physical.stages:
            assert all(oid in produced for oid in stage.input_oids())
            produced.add(stage.output_oid)
        assert physical.root_oid in produced


class TestSchemas:
    def test_pure_chain_propagates_attrs_statically(self, session):
        ds = session.create_dataset(_rows(), "in").select(col("a"), col("b")).filter(col("a") >= 0)
        physical = _compile(ds)
        final = physical.stages[-1]
        assert final.static_attrs == ("a", "b")

    def test_udf_poisons_static_schema_until_projection(self, session):
        ds = session.create_dataset(_rows(), "in").map(lambda item: item, "noop")
        mapped = _compile(ds)
        assert mapped.stages[-1].static_attrs is None
        rebuilt = _compile(ds.select(col("a")))
        assert rebuilt.stages[-1].static_attrs == ("a",)

    def test_describe_mentions_every_stage(self, session):
        ds = session.create_dataset(_rows(), "in").filter(col("a") >= 2)
        text = _compile(ds).describe()
        assert "stage 0 [read]" in text
        assert "schema:" in text


class TestPruneInsertion:
    def test_prune_inserted_for_narrow_consumers(self, session):
        ds = session.create_dataset(_rows(), "in").filter(col("a") >= 2).select(col("a"))
        physical = _compile(ds)
        fused = physical.stages[1]
        assert isinstance(fused.ops[0], PruneOp)
        assert fused.ops[0].keep == frozenset({"a"})

    def test_prune_skipped_when_chain_starts_with_select(self, session):
        ds = session.create_dataset(_rows(), "in").select(col("a"))
        physical = _compile(ds)
        fused = physical.stages[1]
        assert isinstance(fused.ops[0], SelectOp)
        assert not any(isinstance(op, PruneOp) for op in fused.ops)


class TestLimitPrefix:
    def test_limit_prefix_only_without_capture(self, session):
        ds = session.create_dataset(_rows(), "in").filter(col("a") >= 0).limit(3)
        plain = _compile(ds)
        plain_ops = [
            op
            for stage in plain.stages
            if isinstance(stage, FusedStage)
            for op in stage.ops
        ]
        assert any(isinstance(op, LimitPrefixOp) for op in plain_ops)
        captured = _compile(ds, hooks=[StructuralCaptureHook()])
        captured_ops = [
            op
            for stage in captured.stages
            if isinstance(stage, FusedStage)
            for op in stage.ops
        ]
        assert not any(isinstance(op, LimitPrefixOp) for op in captured_ops)
        assert ds.execute().items() == ds.execute(capture=True).items()

    def test_compile_via_executor(self, session):
        ds = session.create_dataset(_rows(), "in").filter(col("a") >= 2)
        physical = Executor(config=session.config).compile(ds.plan)
        assert physical.logical_root is ds.plan
