"""Unit tests for deterministic fault injection (spec parsing + probes)."""

import pickle
import time

import pytest

from repro.engine.faults import DEFAULT_DELAY_SECONDS, FaultPlan, parse_faults
from repro.errors import ExecutionError, InjectedFault


class TestParseFaults:
    def test_empty_specs_mean_no_plan(self):
        assert parse_faults(None) is None
        assert parse_faults("") is None
        assert parse_faults("   ") is None

    def test_mode_and_probability(self):
        plan = parse_faults("flaky_once:0.2")
        assert plan == FaultPlan(mode="flaky_once", probability=0.2)

    def test_options(self):
        plan = parse_faults("delay:0.5:seed=7:seconds=0.01")
        assert plan.mode == "delay"
        assert plan.seed == 7
        assert plan.seconds == 0.01

    @pytest.mark.parametrize(
        "spec",
        [
            "flaky_once",  # missing probability
            "flaky_once:lots",  # non-numeric probability
            "flaky_once:2.0",  # probability out of range
            "meteor:0.5",  # unknown mode
            "crash:0.5:color=red",  # unknown option
            "delay:0.5:seconds=soon",  # non-numeric option
            "delay:0.5:seconds=-1",  # negative delay
        ],
    )
    def test_malformed_specs_raise(self, spec):
        with pytest.raises(ExecutionError):
            parse_faults(spec)

    def test_spec_round_trips(self):
        for spec in ("flaky_once:0.2", "crash:1.0:seed=3", "delay:0.5:seconds=0.01"):
            plan = parse_faults(spec)
            assert parse_faults(plan.spec()) == plan


class TestFaultPlanDeterminism:
    def test_selection_is_a_pure_function_of_key_and_attempt(self):
        plan = FaultPlan(mode="crash", probability=0.5)
        draws = [plan.selects(f"s0:o1:p{part}", 1) for part in range(32)]
        assert draws == [plan.selects(f"s0:o1:p{part}", 1) for part in range(32)]
        assert any(draws) and not all(draws)  # p=0.5 over 32 keys: mixed

    def test_seed_changes_the_selection(self):
        keys = [f"s0:o1:p{part}" for part in range(64)]
        base = [FaultPlan("crash", 0.5, seed=0).selects(key, 1) for key in keys]
        reseeded = [FaultPlan("crash", 0.5, seed=1).selects(key, 1) for key in keys]
        assert base != reseeded

    def test_probability_bounds(self):
        never = FaultPlan(mode="crash", probability=0.0)
        always = FaultPlan(mode="crash", probability=1.0)
        assert not any(never.selects(f"k{i}", 1) for i in range(16))
        assert all(always.selects(f"k{i}", 1) for i in range(16))

    def test_flaky_once_fires_only_on_the_first_attempt(self):
        plan = FaultPlan(mode="flaky_once", probability=1.0)
        assert plan.selects("task", 1)
        assert not plan.selects("task", 2)
        with pytest.raises(InjectedFault):
            plan.apply("task", 1)
        plan.apply("task", 2)  # retry heals

    def test_injected_fault_is_retryable(self):
        plan = FaultPlan(mode="crash", probability=1.0)
        with pytest.raises(InjectedFault) as excinfo:
            plan.apply("task", 1)
        assert excinfo.value.retryable

    def test_crash_redraws_per_attempt(self):
        plan = FaultPlan(mode="crash", probability=0.5)
        per_attempt = [
            [plan.selects(f"k{i}", attempt) for i in range(64)]
            for attempt in (1, 2)
        ]
        assert per_attempt[0] != per_attempt[1]

    def test_delay_sleeps_instead_of_raising(self):
        plan = FaultPlan(mode="delay", probability=1.0, seconds=0.005)
        started = time.perf_counter()
        plan.apply("task", 1)
        assert time.perf_counter() - started >= 0.005

    def test_default_delay(self):
        assert FaultPlan(mode="delay", probability=1.0).seconds == DEFAULT_DELAY_SECONDS

    def test_plan_is_picklable(self):
        plan = FaultPlan(mode="flaky_once", probability=0.3, seed=9)
        assert pickle.loads(pickle.dumps(plan)) == plan
