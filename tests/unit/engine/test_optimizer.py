"""Unit tests for the rewrite rules: filter pushdown and projection pruning."""

import pytest

from repro.engine.config import EngineConfig
from repro.engine.expressions import col, struct_
from repro.engine.hooks import StructuralCaptureHook
from repro.engine.optimizer import (
    OptimizationReport,
    plan_physical,
    prune_attribute_sets,
    pushdown_filters,
)
from repro.engine.plan import FilterNode, FlattenNode, SelectNode
from repro.engine.session import Session


@pytest.fixture
def session():
    return Session(num_partitions=2)


def _rows():
    return [
        {"a": index, "b": index * 10, "c": -index, "tags": ["x", "y"]}
        for index in range(10)
    ]


def _pushdown(plan):
    report = OptimizationReport()
    return pushdown_filters(plan, report), report


class TestFilterPushdown:
    def test_filter_moves_below_select(self, session):
        ds = (
            session.create_dataset(_rows(), "in")
            .select(col("a"), col("b"))
            .filter(col("a") >= 5)
        )
        rewritten, report = _pushdown(ds.plan)
        assert isinstance(rewritten, SelectNode)
        assert isinstance(rewritten.children[0], FilterNode)
        assert "pushdown" in report.rules_fired()
        # Every logical operator keeps its oid; only the edges are rewired.
        assert {node.oid for node in rewritten.walk()} == {
            node.oid for node in ds.plan.walk()
        }
        assert _execute(ds, optimize=True) == _execute(ds, optimize=False)

    def test_predicate_rewritten_through_alias(self, session):
        ds = (
            session.create_dataset(_rows(), "in")
            .select(col("a").alias("renamed"), col("b"))
            .filter(col("renamed") >= 5)
        )
        rewritten, report = _pushdown(ds.plan)
        assert "pushdown" in report.rules_fired()
        pushed = rewritten.children[0]
        assert isinstance(pushed, FilterNode)
        assert "renamed" not in repr(pushed.predicate)  # rewritten to col(a)
        assert _execute(ds, optimize=True) == _execute(ds, optimize=False)

    def test_filter_moves_below_flatten_when_independent(self, session):
        ds = (
            session.create_dataset(_rows(), "in")
            .flatten("tags", "tag")
            .filter(col("a") >= 5)
        )
        rewritten, _ = _pushdown(ds.plan)
        assert isinstance(rewritten, FlattenNode)
        assert isinstance(rewritten.children[0], FilterNode)

    def test_filter_on_flattened_attr_stays_put(self, session):
        ds = (
            session.create_dataset(_rows(), "in")
            .flatten("tags", "tag")
            .filter(col("tag") == "x")
        )
        rewritten, report = _pushdown(ds.plan)
        assert isinstance(rewritten, FilterNode)
        assert "pushdown" not in report.rules_fired()

    def test_filter_on_computed_struct_stays_put(self, session):
        ds = (
            session.create_dataset(_rows(), "in")
            .select(struct_(a=col("a")).alias("s"), col("b"))
            .filter(col("s") == {"a": 1})
        )
        rewritten, report = _pushdown(ds.plan)
        assert isinstance(rewritten, FilterNode)
        assert "pushdown" not in report.rules_fired()

    def test_pushdown_disabled_under_capture(self, session):
        ds = (
            session.create_dataset(_rows(), "in")
            .select(col("a"), col("b"))
            .filter(col("a") >= 5)
        )
        captured = plan_physical(
            ds.plan, EngineConfig(), hooks=[StructuralCaptureHook()]
        )
        assert "pushdown" not in captured.report.rules_fired()
        assert captured.executed_root is ds.plan
        plain = plan_physical(ds.plan, EngineConfig())
        assert "pushdown" in plain.report.rules_fired()


class TestProjectionPruning:
    def test_select_requirements_reach_the_source(self, session):
        ds = (
            session.create_dataset(_rows(), "in")
            .filter(col("a") >= 2)
            .select(col("b"))
        )
        sets = prune_attribute_sets(ds.plan)
        read_oid = ds.plan.children[0].children[0].oid
        assert sets[read_oid] == frozenset({"a", "b"})

    def test_flatten_new_name_is_protected(self, session):
        ds = (
            session.create_dataset(_rows(), "in")
            .flatten("tags", "tag")
            .select(col("tag"))
        )
        sets = prune_attribute_sets(ds.plan)
        read_oid = ds.plan.children[0].children[0].oid
        assert "tags" in sets[read_oid]
        assert "tag" in sets[read_oid]  # globally protected alias

    def test_map_blocks_pruning(self, session):
        ds = (
            session.create_dataset(_rows(), "in")
            .map(lambda item: item, "noop")
            .select(col("a"))
        )
        sets = prune_attribute_sets(ds.plan)
        read_oid = ds.plan.children[0].children[0].oid
        assert read_oid not in sets  # UDF may read anything

    def test_pruned_execution_matches_unpruned(self, session):
        ds = (
            session.create_dataset(_rows(), "in")
            .filter(col("a") >= 2)
            .select(col("b"))
        )
        assert _execute(ds, optimize=True) == _execute(ds, optimize=False)


class TestReport:
    def test_describe_lists_rules_in_order(self, session):
        report = OptimizationReport()
        assert report.describe() == "(no rewrites applied)"
        report.add("prune", "prune input of oid 2")
        report.add("fuse", "fuse chain starting at oid 2")
        report.add("prune", "prune input of oid 5")
        assert report.rules_fired() == ("prune", "fuse")
        assert "[prune] prune input of oid 2" in report.describe()


def _execute(ds, optimize: bool):
    from repro.engine.executor import Executor

    return Executor(config=EngineConfig(optimize=optimize)).execute(ds.plan).items()
