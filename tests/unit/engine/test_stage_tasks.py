"""Pickle round-trips of every StageTask the optimizer can emit.

The process-pool scheduler only works if each fused stage compiles to a
descriptor that survives ``pickle`` -- operator chains included, which is
why the expression builders use named module-level functions instead of
lambdas.  These tests run every evaluation scenario through the serial
scheduler twice -- once untouched, once with a shim that pickles and
unpickles each :class:`StageTask` before executing it -- asserting (a) the
round-trip never fails and (b) the rebuilt tasks compute exactly what the
original tasks compute.
"""

import pickle
from contextlib import contextmanager

import pytest

from repro.engine.config import EngineConfig
from repro.engine.physical import StageTask
from repro.engine.scheduler import SerialScheduler
from repro.engine.session import Session
from repro.workloads.scenarios import SCENARIOS, load_workload, scenario

SCALE = 0.05


@contextmanager
def pickling_stage_tasks():
    """Route every StageTask through pickle before the serial backend runs it."""
    seen = []
    original = SerialScheduler._run_batch

    def round_tripping(self, tasks):
        rebuilt = []
        for task in tasks:
            if isinstance(task, StageTask):
                payload = pickle.dumps(task)
                task = pickle.loads(payload)
                seen.append((task.key, len(payload)))
            rebuilt.append(task)
        return original(self, rebuilt)

    SerialScheduler._run_batch = round_tripping
    try:
        yield seen
    finally:
        SerialScheduler._run_batch = original


def _run_scenario(name, capture):
    spec = scenario(name)
    data = load_workload(spec.kind, SCALE)
    session = Session(num_partitions=2, config=EngineConfig())
    return spec.build(session, data).execute(capture=capture)


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_stage_tasks_survive_pickling(name):
    baseline = _run_scenario(name, capture=True)
    with pickling_stage_tasks() as seen:
        round_tripped = _run_scenario(name, capture=True)
    assert seen, f"{name} compiled no fused stage tasks"
    assert round_tripped.rows() == baseline.rows()


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_plain_stage_tasks_survive_pickling(name):
    baseline = _run_scenario(name, capture=False)
    with pickling_stage_tasks() as seen:
        round_tripped = _run_scenario(name, capture=False)
    assert seen
    assert round_tripped.items() == baseline.items()


def test_task_fields_survive_pickling():
    captured = {}
    original = SerialScheduler._run_batch

    def grab(self, tasks):
        for task in tasks:
            if isinstance(task, StageTask) and "task" not in captured:
                captured["task"] = task
        return original(self, tasks)

    SerialScheduler._run_batch = grab
    try:
        _run_scenario("T1", capture=True)
    finally:
        SerialScheduler._run_batch = original

    task = captured["task"]
    clone = pickle.loads(pickle.dumps(task))
    assert clone.key == task.key
    assert clone.part == task.part
    assert clone.stage_label == task.stage_label
    assert clone.capturing == task.capturing
    assert len(clone.ops) == len(task.ops)
    assert clone.items == task.items
