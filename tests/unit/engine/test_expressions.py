"""Unit tests for the column expression language."""

import pytest

from repro.engine.expressions import (
    AliasedExpr,
    avg,
    coalesce,
    col,
    collect_list,
    collect_set,
    count,
    lit,
    max_,
    min_,
    struct_,
    sum_,
    as_expression,
    as_operand,
)
from repro.errors import ExpressionError
from repro.nested.values import Bag, DataItem, NestedSet


@pytest.fixture
def tweet() -> DataItem:
    return DataItem(
        {
            "text": "good BTS news",
            "user": {"id_str": "lp", "name": "Lisa Paul"},
            "user_mentions": [{"id_str": "jm"}],
            "retweet_count": 0,
        }
    )


class TestColumn:
    def test_evaluate_nested(self, tweet):
        assert col("user.id_str").evaluate(tweet) == "lp"

    def test_missing_attribute_is_null(self, tweet):
        assert col("nope.deeper").evaluate(tweet) is None

    def test_accessed_paths_schematic(self):
        paths = col("user_mentions[1].id_str").accessed_paths()
        assert {str(path) for path in paths} == {"user_mentions.id_str"}

    def test_output_name_is_last_step(self):
        assert col("user.id_str").output_name() == "id_str"

    def test_empty_path_rejected(self):
        with pytest.raises(Exception):
            col("")

    def test_is_projection(self):
        assert col("a").is_projection()
        assert not (col("a") + 1).is_projection()


class TestOperators:
    def test_comparisons(self, tweet):
        assert (col("retweet_count") == 0).evaluate(tweet)
        assert (col("retweet_count") != 1).evaluate(tweet)
        assert (col("retweet_count") < 5).evaluate(tweet)
        assert (col("retweet_count") <= 0).evaluate(tweet)
        assert (col("retweet_count") >= 0).evaluate(tweet)
        assert not (col("retweet_count") > 0).evaluate(tweet)

    def test_string_operand_is_literal_not_column(self, tweet):
        # Spark semantics: col("user.id_str") == "lp" compares to the constant.
        assert (col("user.id_str") == "lp").evaluate(tweet)

    def test_explicit_column_comparison(self, tweet):
        assert (col("user.id_str") == col("user.id_str")).evaluate(tweet)

    def test_arithmetic(self, tweet):
        assert (col("retweet_count") + 5).evaluate(tweet) == 5
        assert (col("retweet_count") - 1).evaluate(tweet) == -1
        assert (lit(6) * lit(7)).evaluate(tweet) == 42
        assert (lit(7) / lit(2)).evaluate(tweet) == 3.5

    def test_boolean_connectives(self, tweet):
        expr = (col("retweet_count") == 0) & col("text").contains("good")
        assert expr.evaluate(tweet)
        expr = (col("retweet_count") == 1) | col("text").contains("good")
        assert expr.evaluate(tweet)
        assert (~(col("retweet_count") == 1)).evaluate(tweet)

    def test_accessed_paths_union(self):
        expr = (col("a") == col("b")) & col("c.d").is_null()
        assert {str(path) for path in expr.accessed_paths()} == {"a", "b", "c.d"}


class TestPredicateHelpers:
    def test_contains_null_safe(self):
        assert not col("text").contains("x").evaluate(DataItem(text=None))

    def test_startswith(self, tweet):
        assert col("text").startswith("good").evaluate(tweet)
        assert not col("text").startswith("bad").evaluate(tweet)

    def test_isin(self, tweet):
        assert col("user.id_str").isin(["lp", "jm"]).evaluate(tweet)
        assert not col("user.id_str").isin(["xx"]).evaluate(tweet)

    def test_null_checks(self, tweet):
        assert col("missing").is_null().evaluate(tweet)
        assert col("text").is_not_null().evaluate(tweet)

    def test_size(self, tweet):
        assert col("user_mentions").size().evaluate(tweet) == 1
        assert col("missing").size().evaluate(tweet) == 0

    def test_lower(self, tweet):
        assert col("user.name").lower().evaluate(tweet) == "lisa paul"

    def test_coalesce(self, tweet):
        assert coalesce(col("missing"), col("user.id_str")).evaluate(tweet) == "lp"
        assert coalesce(col("missing")).evaluate(tweet) is None


class TestAliasAndStruct:
    def test_alias(self, tweet):
        aliased = col("user.id_str").alias("uid")
        assert aliased.output_name() == "uid"
        assert aliased.evaluate(tweet) == "lp"

    def test_realias_replaces(self):
        assert col("a").alias("x").alias("y").output_name() == "y"

    def test_empty_alias_rejected(self):
        with pytest.raises(ExpressionError):
            col("a").alias("")

    def test_struct_builds_item(self, tweet):
        built = struct_(id_str=col("user.id_str"), n=col("retweet_count")).evaluate(tweet)
        assert built == DataItem(id_str="lp", n=0)

    def test_struct_manipulation_pairs_nested(self):
        from repro.core.paths import Path

        pairs = struct_(id_str=col("id_str"), name=col("name")).manipulation_pairs(
            Path().child("user")
        )
        rendered = [(str(a), str(b)) for a, b in pairs]
        assert rendered == [("id_str", "user.id_str"), ("name", "user.name")]

    def test_empty_struct_rejected(self):
        with pytest.raises(ExpressionError):
            struct_()

    def test_derived_expression_needs_alias(self):
        with pytest.raises(ExpressionError, match="alias"):
            (col("a") + 1).output_name()

    def test_literal_has_no_pairs(self):
        from repro.core.paths import Path

        assert lit(5).manipulation_pairs(Path().child("x")) == []


class TestCoercionHelpers:
    def test_as_expression_string_is_column(self, tweet):
        assert as_expression("user.id_str").evaluate(tweet) == "lp"

    def test_as_operand_string_is_literal(self, tweet):
        assert as_operand("user.id_str").evaluate(tweet) == "user.id_str"


class TestAggregates:
    def test_scalar_aggregates(self):
        values = [1, 2, None, 3]
        assert count().apply(values) == 4
        assert count(col("x")).apply(values) == 3
        assert sum_(col("x")).apply(values) == 6
        assert min_(col("x")).apply(values) == 1
        assert max_(col("x")).apply(values) == 3
        assert avg(col("x")).apply(values) == 2.0

    def test_empty_group_edge_cases(self):
        assert sum_(col("x")).apply([None]) is None
        assert min_(col("x")).apply([]) is None
        assert avg(col("x")).apply([None]) is None
        assert count().apply([]) == 0

    def test_collect_list_preserves_order_and_duplicates(self):
        collected = collect_list(col("x")).apply(["b", "a", "b"])
        assert isinstance(collected, Bag)
        assert collected.items() == ("b", "a", "b")

    def test_collect_set_dedupes(self):
        collected = collect_set(col("x")).apply(["b", "a", "b"])
        assert isinstance(collected, NestedSet)
        assert collected.items() == ("b", "a")

    def test_nested_flag(self):
        assert collect_list(col("x")).is_nested
        assert not sum_(col("x")).is_nested

    def test_output_names(self):
        assert sum_(col("val")).output_name() == "sum_val"
        assert sum_(col("val")).alias("total").output_name() == "total"
        assert count().output_name() == "count"

    def test_accessed_paths(self):
        assert {str(p) for p in collect_list(col("a.b")).accessed_paths()} == {"a.b"}
