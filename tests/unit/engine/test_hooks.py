"""Unit tests for the capture hooks replacing the capture/lineage flags."""

from repro.core.operator_provenance import UNDEFINED
from repro.engine.executor import Executor
from repro.engine.expressions import col
from repro.engine.hooks import (
    CaptureHook,
    LineageCaptureHook,
    MetricsHook,
    StructuralCaptureHook,
    hooks_for,
    provenance_store,
)
from repro.engine.session import Session


def _pipeline(session):
    return (
        session.create_dataset(
            [{"a": index, "b": index * 2, "tags": ["x", "y"]} for index in range(6)],
            "in",
        )
        .filter(col("a") >= 1)
        .select(col("a"), col("tags"))
        .flatten("tags", "tag")
    )


class TestHooksFor:
    def test_flag_translation(self):
        assert hooks_for(capture=False, lineage_only=False) == []
        (structural,) = hooks_for(capture=True, lineage_only=False)
        assert type(structural) is StructuralCaptureHook
        (lineage,) = hooks_for(capture=True, lineage_only=True)
        assert type(lineage) is LineageCaptureHook

    def test_capture_hooks_demand_ids_and_fidelity(self):
        assert StructuralCaptureHook.needs_ids and StructuralCaptureHook.plan_fidelity
        assert LineageCaptureHook.needs_ids and LineageCaptureHook.plan_fidelity
        assert not MetricsHook.needs_ids and not MetricsHook.plan_fidelity

    def test_provenance_store_picks_first(self):
        structural = StructuralCaptureHook()
        assert provenance_store([MetricsHook(), structural]) is structural.store
        assert provenance_store([MetricsHook()]) is None
        assert provenance_store([]) is None


class TestStructuralVsLineage:
    def test_lineage_blanks_structure_keeps_associations(self):
        session = Session(num_partitions=2)
        plan = _pipeline(session).plan
        structural = Executor(hooks=[StructuralCaptureHook()]).execute(plan)
        lineage = Executor(hooks=[LineageCaptureHook()]).execute(plan)
        assert structural.items() == lineage.items()
        for full in structural.store.operators():
            blanked = lineage.store.get(full.oid)
            # Same id associations (what Titian keeps)...
            assert type(full.associations) is type(blanked.associations)
            # ...but no accessed paths or manipulations below the top level.
            assert all(not ref.accessed for ref in blanked.inputs)
            if full.manipulations is not UNDEFINED and full.manipulations:
                assert blanked.manipulations == ()


class TestMetricsHook:
    def test_stage_accounting(self):
        session = Session(num_partitions=2)
        execution = _pipeline(session).execute()
        metrics = execution.metrics
        assert metrics.stages(), "executor must emit per-stage metrics"
        assert metrics.stages()[0].kind == "read"
        for stage in metrics.stages():
            assert stage.rows_out >= 0
            assert stage.seconds >= 0.0
        payload = metrics.to_json()
        assert set(payload) == {"total_seconds", "scheduler", "layout", "operators", "stages"}
        assert len(payload["stages"]) == len(metrics.stages())
        assert payload["scheduler"]["backend"] == "serial"
        assert payload["scheduler"]["task_retries"] == 0

    def test_rows_in_and_out_reflect_filter(self):
        session = Session(num_partitions=2)
        execution = _pipeline(session).execute()
        by_label = {stage.label: stage for stage in execution.metrics.stages()}
        read = execution.metrics.stages()[0]
        assert read.rows_out == 6
        # Whatever stage contains the filter sees 6 rows in, 5 out of the filter.
        filter_stage = next(s for label, s in by_label.items() if "filter" in label)
        assert filter_stage.rows_in == 6


class TestCustomHook:
    def test_arbitrary_observer_hook(self):
        events = []

        class Recorder(CaptureHook):
            def on_stage(self, stage):
                events.append((stage.index, stage.kind))

        session = Session(num_partitions=2)
        execution = _pipeline(session).execute(hooks=[Recorder()])
        assert events and events[0] == (0, "read")
        assert execution.store is None  # observer hooks do not create a store

    def test_dataset_execute_accepts_hooks(self):
        session = Session(num_partitions=2)
        hook = LineageCaptureHook()
        execution = _pipeline(session).execute(hooks=[hook])
        assert execution.store is hook.store
