"""Unit tests for the Dataset API, session, storage, and metrics."""

import pytest

from repro.engine.dataset import Dataset, GroupedDataset
from repro.engine.expressions import col, count
from repro.engine.metrics import ExecutionMetrics, Stopwatch
from repro.engine.session import Session
from repro.engine.storage import InMemorySource, JsonlSource
from repro.errors import DataModelError, ExecutionError, PlanError
from repro.nested.json_io import write_jsonl
from repro.nested.values import DataItem


class TestDatasetApi:
    def test_lazy_transformations(self, session):
        ds = session.create_dataset([{"a": 1}], "in")
        derived = ds.filter(col("a") == 1).select(col("a"))
        assert isinstance(derived, Dataset)
        assert derived.plan.oid != ds.plan.oid

    def test_where_alias(self, session):
        ds = session.create_dataset([{"a": 1}, {"a": 2}], "in")
        assert ds.where(col("a") == 1).count() == 1

    def test_count_and_take(self, session):
        ds = session.create_dataset([{"a": index} for index in range(10)], "in")
        assert ds.count() == 10
        assert ds.take(3) == [DataItem(a=0), DataItem(a=1), DataItem(a=2)]

    def test_select_accepts_strings(self, session):
        ds = session.create_dataset([{"user": {"id_str": "lp"}}], "in")
        assert ds.select("user.id_str").collect() == [DataItem(id_str="lp")]

    def test_show_returns_text(self, session, capsys):
        ds = session.create_dataset([{"a": 1}], "in")
        text = ds.show()
        assert "<a: 1>" in text
        assert "<a: 1>" in capsys.readouterr().out

    def test_explain_lists_operators(self, session):
        ds = session.create_dataset([{"a": 1}], "in").filter(col("a") == 1)
        explained = ds.explain()
        assert "read in" in explained
        assert "filter" in explained

    def test_cross_session_combination_rejected(self):
        first = Session(2).create_dataset([{"a": 1}], "x")
        second = Session(2).create_dataset([{"a": 1}], "y")
        with pytest.raises(PlanError, match="different sessions"):
            first.union(second)

    def test_group_by_requires_aggregates(self, session):
        grouped = session.create_dataset([{"a": 1}], "in").group_by(col("a"))
        assert isinstance(grouped, GroupedDataset)
        with pytest.raises(PlanError, match="aggregate expressions"):
            grouped.agg(col("a"))  # type: ignore[arg-type]

    def test_group_by_string_keys(self, session):
        ds = session.create_dataset([{"a": 1, "b": 2}], "in")
        out = ds.group_by("a").agg(count()).collect()
        assert out[0]["a"] == 1


class TestSession:
    def test_oids_unique_and_increasing(self):
        session = Session(2)
        oids = [session.next_oid() for _ in range(5)]
        assert oids == sorted(set(oids))

    def test_invalid_partitions(self):
        with pytest.raises(ExecutionError):
            Session(0)

    def test_create_dataset_rejects_non_items(self):
        with pytest.raises(DataModelError, match="must be data items"):
            Session(2).create_dataset([1, 2, 3], "nums")


class TestStorage:
    def test_in_memory_source_snapshot(self):
        source = InMemorySource("x", [{"a": 1}])
        assert len(source) == 1
        first = source.load()
        second = source.load()
        assert first == second
        assert first is not second  # fresh list per load

    def test_jsonl_source_rereads_file(self, tmp_path):
        path = tmp_path / "data.jsonl"
        write_jsonl(path, [DataItem(a=1)])
        source = JsonlSource(path)
        assert source.name == "data.jsonl"
        assert source.load() == [DataItem(a=1)]
        write_jsonl(path, [DataItem(a=1), DataItem(a=2)])
        assert len(source.load()) == 2

    def test_session_read_jsonl(self, tmp_path):
        path = tmp_path / "tweets.jsonl"
        write_jsonl(path, [DataItem(text="hi")])
        ds = Session(2).read_jsonl(path, name="tweets")
        assert ds.collect() == [DataItem(text="hi")]


class TestMetrics:
    def test_stopwatch_accumulates(self):
        watch = Stopwatch()
        with watch:
            pass
        first = watch.elapsed
        with watch:
            pass
        assert watch.elapsed >= first

    def test_operator_slot_reused(self):
        metrics = ExecutionMetrics()
        slot = metrics.operator(1, "filter", "filter x")
        assert metrics.operator(1, "filter", "filter x") is slot

    def test_by_type_sums(self):
        metrics = ExecutionMetrics()
        metrics.operator(1, "filter", "f1").seconds = 0.5
        metrics.operator(2, "filter", "f2").seconds = 0.25
        metrics.operator(3, "read", "r").seconds = 1.0
        assert metrics.by_type() == {"filter": 0.75, "read": 1.0}
