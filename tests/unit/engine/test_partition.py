"""Unit tests for partitioning utilities."""

import pytest

from repro.engine.partition import concat_partitions, hash_partition, partition_rows


class TestPartitionRows:
    def test_even_split(self):
        partitions = partition_rows(list(range(8)), 4)
        assert [len(partition) for partition in partitions] == [2, 2, 2, 2]

    def test_remainder_spread_to_front(self):
        partitions = partition_rows(list(range(10)), 4)
        assert [len(partition) for partition in partitions] == [3, 3, 2, 2]

    def test_order_reconstructable(self):
        rows = list(range(17))
        assert concat_partitions(partition_rows(rows, 5)) == rows

    def test_more_partitions_than_rows(self):
        partitions = partition_rows([1], 4)
        assert sum(len(partition) for partition in partitions) == 1
        assert len(partitions) == 4

    def test_empty_input(self):
        assert partition_rows([], 3) == [[], [], []]

    def test_invalid_partition_count(self):
        with pytest.raises(ValueError):
            partition_rows([1], 0)


class TestHashPartition:
    def test_same_key_same_partition(self):
        rows = [("a", 1), ("b", 2), ("a", 3)]
        partitions = hash_partition(rows, 3, key_of=lambda row: row[0])
        for partition in partitions:
            keys = {key for key, _ in partition}
            # "a" rows must be co-located.
            if "a" in keys:
                assert [row for row in partition if row[0] == "a"] == [("a", 1), ("a", 3)]

    def test_all_rows_preserved(self):
        rows = list(range(100))
        partitions = hash_partition(rows, 7, key_of=lambda row: row % 10)
        assert sorted(concat_partitions(partitions)) == rows

    def test_order_within_partition_is_arrival_order(self):
        rows = [(1, "x"), (1, "y"), (1, "z")]
        partitions = hash_partition(rows, 4, key_of=lambda row: row[0])
        non_empty = [partition for partition in partitions if partition]
        assert non_empty == [[(1, "x"), (1, "y"), (1, "z")]]
