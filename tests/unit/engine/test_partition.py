"""Unit tests for partitioning utilities."""

import json
import subprocess
import sys

import pytest

from repro.engine.partition import (
    concat_partitions,
    hash_partition,
    partition_rows,
    stable_hash,
)
from repro.nested.values import Bag, DataItem, NestedSet


class TestPartitionRows:
    def test_even_split(self):
        partitions = partition_rows(list(range(8)), 4)
        assert [len(partition) for partition in partitions] == [2, 2, 2, 2]

    def test_remainder_spread_to_front(self):
        partitions = partition_rows(list(range(10)), 4)
        assert [len(partition) for partition in partitions] == [3, 3, 2, 2]

    def test_order_reconstructable(self):
        rows = list(range(17))
        assert concat_partitions(partition_rows(rows, 5)) == rows

    def test_more_partitions_than_rows(self):
        partitions = partition_rows([1], 4)
        assert sum(len(partition) for partition in partitions) == 1
        assert len(partitions) == 4

    def test_empty_input(self):
        assert partition_rows([], 3) == [[], [], []]

    def test_invalid_partition_count(self):
        with pytest.raises(ValueError):
            partition_rows([1], 0)


class TestHashPartition:
    def test_same_key_same_partition(self):
        rows = [("a", 1), ("b", 2), ("a", 3)]
        partitions = hash_partition(rows, 3, key_of=lambda row: row[0])
        for partition in partitions:
            keys = {key for key, _ in partition}
            # "a" rows must be co-located.
            if "a" in keys:
                assert [row for row in partition if row[0] == "a"] == [("a", 1), ("a", 3)]

    def test_all_rows_preserved(self):
        rows = list(range(100))
        partitions = hash_partition(rows, 7, key_of=lambda row: row % 10)
        assert sorted(concat_partitions(partitions)) == rows

    def test_order_within_partition_is_arrival_order(self):
        rows = [(1, "x"), (1, "y"), (1, "z")]
        partitions = hash_partition(rows, 4, key_of=lambda row: row[0])
        non_empty = [partition for partition in partitions if partition]
        assert non_empty == [[(1, "x"), (1, "y"), (1, "z")]]


class TestStableHash:
    """The shuffle hash must not depend on ``PYTHONHASHSEED``.

    The builtin ``hash()`` the shuffle previously used is randomized per
    interpreter for strings, so two process-pool workers (or two recorded
    runs of the same pipeline) could assign the same row to different
    partitions.
    """

    def test_equal_keys_across_numeric_types_share_buckets(self):
        # Python equality crosses numeric types; grouping relies on it.
        assert stable_hash(1) == stable_hash(True) == stable_hash(1.0)
        assert stable_hash(0) == stable_hash(False) == stable_hash(0.0)
        assert stable_hash(("a", 2)) == stable_hash(("a", 2.0))

    def test_distinct_values_do_not_collide_structurally(self):
        values = [None, 0, 1, "", "1", 1.5, (), ("",), ("1",), (1,)]
        hashes = [stable_hash(value) for value in values]
        assert len(set(hashes)) == len(hashes)

    def test_model_values_hash(self):
        item = DataItem({"user": {"id_str": "lp"}, "retweet_count": 0})
        assert stable_hash(item) == stable_hash(
            DataItem({"user": {"id_str": "lp"}, "retweet_count": 0})
        )
        assert stable_hash(Bag([1, 2])) != stable_hash(NestedSet([1, 2]))
        assert stable_hash(Bag([1, 2])) != stable_hash(Bag([2, 1]))

    def test_assignment_pinned_across_subprocesses(self):
        """Run the same shuffle in fresh interpreters with different hash
        seeds; the per-key bucket assignment must be identical every time."""
        script = (
            "import json, sys\n"
            "sys.path.insert(0, 'src')\n"
            "from repro.engine.partition import hash_partition\n"
            "from repro.nested.values import DataItem\n"
            "keys = ['alpha', 'beta', 'gamma', 7, 7.0, True, None,\n"
            "        ('joint', 3), DataItem({'k': 'v'})]\n"
            "rows = [(key, index) for index, key in enumerate(keys)]\n"
            "parts = hash_partition(rows, 4, key_of=lambda row: row[0])\n"
            "print(json.dumps([[index for _, index in part] for part in parts]))\n"
        )
        outputs = []
        for seed in ("0", "1", "12345"):
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                check=True,
                env={"PYTHONHASHSEED": seed, "PYTHONPATH": "src"},
                cwd=".",
            )
            outputs.append(json.loads(result.stdout))
        assert outputs[0] == outputs[1] == outputs[2]
        # And the parent process (whatever its seed) agrees with them.
        keys = [
            "alpha", "beta", "gamma", 7, 7.0, True, None,
            ("joint", 3), DataItem({"k": "v"}),
        ]
        rows = list(zip(keys, range(len(keys))))
        parts = hash_partition(rows, 4, key_of=lambda row: row[0])
        assert [[index for _, index in part] for part in parts] == outputs[0]
