"""Unit tests for the process-wide metrics registry."""

import pytest

from repro.obs.metrics import (
    LATENCY_BUCKETS,
    ROWS_BUCKETS,
    MetricsRegistry,
    get_registry,
    set_build_info,
    set_registry,
)


class TestCounter:
    def test_increments(self):
        counter = MetricsRegistry().counter("repro_runs_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_decrease(self):
        counter = MetricsRegistry().counter("repro_runs_total")
        with pytest.raises(ValueError):
            counter.inc(-1)


class TestGauge:
    def test_set_and_add(self):
        gauge = MetricsRegistry().gauge("repro_cache_hit_rate")
        gauge.set(0.5)
        gauge.add(0.25)
        assert gauge.value == 0.75


class TestHistogram:
    def test_observations_land_in_buckets(self):
        histogram = MetricsRegistry().histogram(
            "repro_rows", buckets=ROWS_BUCKETS
        )
        histogram.observe(0)
        histogram.observe(5)
        histogram.observe(10)  # boundary: le=10
        histogram.observe(10_000_000)  # beyond the last boundary
        assert histogram.count == 4
        assert histogram.sum == 10_000_015
        assert histogram.counts[0] == 1  # le 0
        assert histogram.counts[2] == 2  # le 10 (5 and the boundary hit)
        assert histogram.counts[-1] == 1  # overflow

    def test_render_is_cumulative_with_inf(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("repro_rows", buckets=(1, 10))
        histogram.observe(0.5)
        histogram.observe(5)
        text = registry.render_prometheus()
        assert 'repro_rows_bucket{le="1"} 1' in text
        assert 'repro_rows_bucket{le="10"} 2' in text
        assert 'repro_rows_bucket{le="+Inf"} 2' in text
        assert "repro_rows_count 2" in text

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("bad", buckets=(10, 1))

    def test_render_order_is_buckets_inf_sum_count(self):
        registry = MetricsRegistry()
        registry.histogram("repro_rows", buckets=(1, 10)).observe(5)
        lines = [
            line for line in registry.render_prometheus().splitlines()
            if line.startswith("repro_rows")
        ]
        assert lines == [
            'repro_rows_bucket{le="1"} 0',
            'repro_rows_bucket{le="10"} 1',
            'repro_rows_bucket{le="+Inf"} 1',
            "repro_rows_sum 5",
            "repro_rows_count 1",
        ]

    def test_exemplar_rides_the_max_observation_bucket(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("repro_q", buckets=(0.1, 1.0))
        histogram.observe(0.05, span_id=3)
        histogram.observe(0.5, span_id=17)
        histogram.observe(0.2)  # no span: never displaces an exemplar
        text = registry.render_prometheus()
        assert 'repro_q_bucket{le="1"} 3 # {span_id="17"} 0.5' in text
        assert '# {span_id="3"}' not in text
        payload = histogram.to_json()
        assert payload["exemplar"] == {"span_id": "17", "value": 0.5}

    def test_no_span_ids_means_no_exemplars(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("repro_q", buckets=(1.0,))
        histogram.observe(0.5, span_id=None)
        assert "#" not in "".join(histogram.render())
        assert "exemplar" not in histogram.to_json()


class TestLabelEscaping:
    def test_special_characters_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("a_total", q='he said "hi"\\new\nline').inc()
        text = registry.render_prometheus()
        assert r'q="he said \"hi\"\\new\nline"' in text

    def test_backslash_escapes_first(self):
        # A literal backslash-then-quote must not double-escape: the
        # backslash pass runs before the quote pass.
        registry = MetricsRegistry()
        registry.counter("a_total", q='\\"').inc()
        assert 'q="\\\\\\""' in registry.render_prometheus()


class TestBuildInfo:
    def test_constant_one_gauge_with_version(self):
        import repro

        registry = MetricsRegistry()
        gauge = set_build_info(registry, layout="columnar")
        assert gauge.value == 1
        text = registry.render_prometheus()
        assert "# TYPE repro_build_info gauge" in text
        assert f'version="{repro.__version__}"' in text
        assert 'layout="columnar"' in text

    def test_defaults_to_process_registry(self):
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            set_build_info(component="test")
            assert "repro_build_info" in fresh.render_prometheus()
        finally:
            set_registry(previous)

    def test_republish_is_idempotent(self):
        registry = MetricsRegistry()
        first = set_build_info(registry)
        second = set_build_info(registry)
        assert first is second and second.value == 1


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("a_total") is registry.counter("a_total")
        assert registry.counter("a_total", op="x") is not registry.counter(
            "a_total", op="y"
        )

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        assert registry.counter("a_total", x=1, y=2) is registry.counter(
            "a_total", y=2, x=1
        )

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("a")

    def test_bucket_conflict_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1, 2))
        with pytest.raises(ValueError, match="buckets"):
            registry.histogram("h", buckets=(1, 2, 3))

    def test_default_buckets_are_latency(self):
        histogram = MetricsRegistry().histogram("repro_run_seconds")
        assert histogram.buckets == LATENCY_BUCKETS

    def test_to_json_is_sorted_and_complete(self):
        registry = MetricsRegistry()
        registry.gauge("z_gauge").set(1)
        registry.counter("a_total", op="x").inc(2)
        payload = registry.to_json()
        names = [entry["name"] for entry in payload["metrics"]]
        assert names == sorted(names)
        counter_entry = payload["metrics"][0]
        assert counter_entry == {
            "type": "counter",
            "name": "a_total",
            "labels": {"op": "x"},
            "value": 2.0,
        }

    def test_prometheus_type_headers_once_per_name(self):
        registry = MetricsRegistry()
        registry.counter("a_total", op="x").inc()
        registry.counter("a_total", op="y").inc()
        text = registry.render_prometheus()
        assert text.count("# TYPE a_total counter") == 1
        assert 'a_total{op="x"} 1' in text

    def test_reset_clears(self):
        registry = MetricsRegistry()
        registry.counter("a_total").inc()
        registry.reset()
        assert len(registry) == 0


class TestProcessWideRegistry:
    def test_set_registry_swaps_and_returns_previous(self):
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            set_registry(previous)
        assert get_registry() is previous
