"""Unit tests for the process-wide metrics registry."""

import pytest

from repro.obs.metrics import (
    LATENCY_BUCKETS,
    ROWS_BUCKETS,
    MetricsRegistry,
    get_registry,
    set_registry,
)


class TestCounter:
    def test_increments(self):
        counter = MetricsRegistry().counter("repro_runs_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_decrease(self):
        counter = MetricsRegistry().counter("repro_runs_total")
        with pytest.raises(ValueError):
            counter.inc(-1)


class TestGauge:
    def test_set_and_add(self):
        gauge = MetricsRegistry().gauge("repro_cache_hit_rate")
        gauge.set(0.5)
        gauge.add(0.25)
        assert gauge.value == 0.75


class TestHistogram:
    def test_observations_land_in_buckets(self):
        histogram = MetricsRegistry().histogram(
            "repro_rows", buckets=ROWS_BUCKETS
        )
        histogram.observe(0)
        histogram.observe(5)
        histogram.observe(10)  # boundary: le=10
        histogram.observe(10_000_000)  # beyond the last boundary
        assert histogram.count == 4
        assert histogram.sum == 10_000_015
        assert histogram.counts[0] == 1  # le 0
        assert histogram.counts[2] == 2  # le 10 (5 and the boundary hit)
        assert histogram.counts[-1] == 1  # overflow

    def test_render_is_cumulative_with_inf(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("repro_rows", buckets=(1, 10))
        histogram.observe(0.5)
        histogram.observe(5)
        text = registry.render_prometheus()
        assert 'repro_rows_bucket{le="1"} 1' in text
        assert 'repro_rows_bucket{le="10"} 2' in text
        assert 'repro_rows_bucket{le="+Inf"} 2' in text
        assert "repro_rows_count 2" in text

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("bad", buckets=(10, 1))


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("a_total") is registry.counter("a_total")
        assert registry.counter("a_total", op="x") is not registry.counter(
            "a_total", op="y"
        )

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        assert registry.counter("a_total", x=1, y=2) is registry.counter(
            "a_total", y=2, x=1
        )

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("a")

    def test_bucket_conflict_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1, 2))
        with pytest.raises(ValueError, match="buckets"):
            registry.histogram("h", buckets=(1, 2, 3))

    def test_default_buckets_are_latency(self):
        histogram = MetricsRegistry().histogram("repro_run_seconds")
        assert histogram.buckets == LATENCY_BUCKETS

    def test_to_json_is_sorted_and_complete(self):
        registry = MetricsRegistry()
        registry.gauge("z_gauge").set(1)
        registry.counter("a_total", op="x").inc(2)
        payload = registry.to_json()
        names = [entry["name"] for entry in payload["metrics"]]
        assert names == sorted(names)
        counter_entry = payload["metrics"][0]
        assert counter_entry == {
            "type": "counter",
            "name": "a_total",
            "labels": {"op": "x"},
            "value": 2.0,
        }

    def test_prometheus_type_headers_once_per_name(self):
        registry = MetricsRegistry()
        registry.counter("a_total", op="x").inc()
        registry.counter("a_total", op="y").inc()
        text = registry.render_prometheus()
        assert text.count("# TYPE a_total counter") == 1
        assert 'a_total{op="x"} 1' in text

    def test_reset_clears(self):
        registry = MetricsRegistry()
        registry.counter("a_total").inc()
        registry.reset()
        assert len(registry) == 0


class TestProcessWideRegistry:
    def test_set_registry_swaps_and_returns_previous(self):
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            set_registry(previous)
        assert get_registry() is previous
