"""Unit tests for the explain-analyze query breakdown."""

import time

import pytest

from repro.obs.breakdown import (
    NULL_BREAKDOWN,
    PHASES,
    QueryBreakdown,
    activate,
    get_breakdown,
    render_breakdown,
)


class TestPhaseAccounting:
    def test_phases_sum_exactly_to_total(self):
        breakdown = QueryBreakdown()
        breakdown.start()
        with breakdown.phase("pattern_match"):
            time.sleep(0.002)
        with breakdown.phase("closure"):
            time.sleep(0.001)
        breakdown.finish()
        assert breakdown.total_seconds > 0
        # Exclusive-time bookkeeping: every elapsed nanosecond lands in
        # exactly one bucket, so the sum is the total by construction.
        assert breakdown.phase_sum() == pytest.approx(
            breakdown.total_seconds, rel=1e-9
        )

    def test_unattributed_time_lands_in_other(self):
        breakdown = QueryBreakdown()
        breakdown.start()
        time.sleep(0.002)
        breakdown.finish()
        assert breakdown.phases.get("other", 0) > 0

    def test_nested_phases_are_exclusive(self):
        breakdown = QueryBreakdown()
        breakdown.start()
        with breakdown.phase("load"):
            time.sleep(0.002)
            with breakdown.phase("segment_decode"):
                time.sleep(0.002)
        breakdown.finish()
        assert breakdown.phases["load"] > 0
        assert breakdown.phases["segment_decode"] > 0
        assert breakdown.phase_sum() == pytest.approx(
            breakdown.total_seconds, rel=1e-9
        )

    def test_counters_accumulate_numbers(self):
        breakdown = QueryBreakdown()
        breakdown.count(rows_visited=3, matched=1)
        breakdown.count(rows_visited=2, index_used=True)
        assert breakdown.counters["rows_visited"] == 5
        assert breakdown.counters["matched"] == 1
        assert breakdown.counters["index_used"] is True

    def test_to_json_orders_phases_canonically(self):
        breakdown = QueryBreakdown()
        breakdown.start()
        with breakdown.phase("closure"):
            pass
        with breakdown.phase("load"):
            pass
        breakdown.finish()
        payload = breakdown.to_json()
        observed = list(payload["phases"])
        assert observed == [name for name in PHASES if name in observed]
        assert payload["total_seconds"] == breakdown.total_seconds


class TestNullBreakdown:
    def test_null_is_the_default_and_free(self):
        assert get_breakdown() is NULL_BREAKDOWN
        assert NULL_BREAKDOWN.enabled is False
        with NULL_BREAKDOWN.phase("pattern_match"):
            pass
        NULL_BREAKDOWN.count(rows_visited=100)  # a no-op, records nothing
        assert NULL_BREAKDOWN.phase("x") is NULL_BREAKDOWN.phase("y")

    def test_activate_installs_and_restores(self):
        breakdown = QueryBreakdown()
        with activate(breakdown):
            assert get_breakdown() is breakdown
            inner = QueryBreakdown()
            with activate(inner):
                assert get_breakdown() is inner
            assert get_breakdown() is breakdown
        assert get_breakdown() is NULL_BREAKDOWN


class TestRendering:
    def test_render_shows_phases_and_counters(self):
        breakdown = QueryBreakdown()
        breakdown.start()
        with breakdown.phase("pattern_match"):
            time.sleep(0.001)
        breakdown.count(rows_visited=7)
        breakdown.finish()
        text = render_breakdown(breakdown.to_json())
        assert "query breakdown:" in text
        assert "pattern_match" in text
        assert "rows_visited=7" in text
