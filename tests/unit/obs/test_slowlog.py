"""Unit tests for slow-query capture: threshold, ring buffer, event shape."""

import io
import json
import logging

import pytest

from repro.obs.log import LOGGER_NAME, enable
from repro.obs.slowlog import (
    SLOW_QUERY_ENV,
    SlowQueryLog,
    get_slow_log,
    observe_query,
    set_slow_log,
    slow_threshold_seconds,
)


@pytest.fixture
def ring():
    """A fresh process-wide ring; restores the previous one afterwards."""
    fresh = SlowQueryLog()
    previous = set_slow_log(fresh)
    yield fresh
    set_slow_log(previous)


class TestThreshold:
    def test_unset_disables(self, monkeypatch):
        monkeypatch.delenv(SLOW_QUERY_ENV, raising=False)
        assert slow_threshold_seconds() is None

    def test_empty_and_garbage_disable(self, monkeypatch):
        monkeypatch.setenv(SLOW_QUERY_ENV, "  ")
        assert slow_threshold_seconds() is None
        monkeypatch.setenv(SLOW_QUERY_ENV, "fast")
        assert slow_threshold_seconds() is None
        monkeypatch.setenv(SLOW_QUERY_ENV, "-5")
        assert slow_threshold_seconds() is None

    def test_zero_captures_everything(self, monkeypatch):
        monkeypatch.setenv(SLOW_QUERY_ENV, "0")
        assert slow_threshold_seconds() == 0.0

    def test_millis_convert_to_seconds(self, monkeypatch):
        monkeypatch.setenv(SLOW_QUERY_ENV, "250")
        assert slow_threshold_seconds() == pytest.approx(0.25)


class TestRing:
    def test_bounded_and_newest_first(self):
        ring = SlowQueryLog(maxlen=3)
        for index in range(5):
            ring.record({"seconds": index})
        assert len(ring) == 3
        assert ring.total == 5
        assert [entry["seconds"] for entry in ring.snapshot()] == [4, 3, 2]

    def test_clear_resets_total(self):
        ring = SlowQueryLog()
        ring.record({"seconds": 1})
        ring.clear()
        assert len(ring) == 0 and ring.total == 0

    def test_set_slow_log_swaps_process_ring(self, ring):
        assert get_slow_log() is ring


class TestObserveQuery:
    def test_under_budget_records_nothing(self, ring, monkeypatch):
        monkeypatch.setenv(SLOW_QUERY_ENV, "1000")
        assert observe_query("backtrace", "run-1", "root{}", 0.001) is False
        assert len(ring) == 0

    def test_disabled_records_nothing(self, ring, monkeypatch):
        monkeypatch.delenv(SLOW_QUERY_ENV, raising=False)
        assert observe_query("backtrace", "run-1", "root{}", 99.0) is False
        assert len(ring) == 0

    def test_over_budget_records_entry_and_event(self, ring, monkeypatch):
        monkeypatch.setenv(SLOW_QUERY_ENV, "0")
        logger = logging.getLogger(LOGGER_NAME)
        for handler in list(logger.handlers):
            logger.removeHandler(handler)
        stream = io.StringIO()
        enable(stream)

        breakdown = {"total_seconds": 0.5, "phases": {"other": 0.5}, "counters": {}}
        assert observe_query(
            "forward", "run-9", 'root{//id="x"}', 0.5,
            method="eager", breakdown=breakdown,
        ) is True

        entry = ring.snapshot()[0]
        assert entry["kind"] == "forward"
        assert entry["run_id"] == "run-9"
        assert entry["pattern"] == 'root{//id="x"}'
        assert entry["method"] == "eager"
        assert entry["seconds"] == 0.5
        assert entry["threshold_ms"] == 0.0
        assert entry["breakdown"] == breakdown

        event = json.loads(stream.getvalue())
        assert event["event"] == "slow-query"
        assert event["run_id"] == "run-9"
        assert event["kind"] == "forward"
        assert event["threshold_ms"] == 0.0
        assert event["breakdown"]["total_seconds"] == 0.5

    def test_explicit_threshold_wins_over_env(self, ring, monkeypatch):
        monkeypatch.delenv(SLOW_QUERY_ENV, raising=False)
        assert observe_query(
            "backtrace", "run-1", "root{}", 0.2, threshold=0.1
        ) is True
        assert ring.total == 1
