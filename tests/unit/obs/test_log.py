"""Unit tests for the structured run logger."""

import io
import json
import logging

from repro.obs.log import LOGGER_NAME, enable, get_logger


def _fresh_stream() -> io.StringIO:
    # Detach any handler a previous test attached; the logger is process-wide.
    logger = logging.getLogger(LOGGER_NAME)
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    stream = io.StringIO()
    enable(stream)
    return stream


class TestRunLogger:
    def test_event_emits_one_json_line(self):
        stream = _fresh_stream()
        get_logger("run-0001-example").event("stage-finished", stage=0, rows_out=6)
        payload = json.loads(stream.getvalue())
        assert payload["run_id"] == "run-0001-example"
        assert payload["event"] == "stage-finished"
        assert payload["stage"] == 0
        assert payload["rows_out"] == 6
        assert payload["ts"] > 0

    def test_levels_filter(self):
        stream = _fresh_stream()
        get_logger("run-x").event("debug-detail", level=logging.DEBUG)
        assert stream.getvalue() == ""

    def test_enable_is_idempotent_per_stream(self):
        stream = _fresh_stream()
        first = enable(stream)
        second = enable(stream)
        assert first is second
        get_logger("run-x").event("once")
        assert len(stream.getvalue().splitlines()) == 1

    def test_plain_messages_still_render(self):
        stream = _fresh_stream()
        logging.getLogger(LOGGER_NAME).info("plain text")
        payload = json.loads(stream.getvalue())
        assert payload["event"] == "plain text"
