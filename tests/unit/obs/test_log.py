"""Unit tests for the structured run logger."""

import io
import json
import logging

import pytest

from repro.obs.log import EVENT_KEYS, LOGGER_NAME, enable, get_logger


def _fresh_stream() -> io.StringIO:
    # Detach any handler a previous test attached; the logger is process-wide.
    logger = logging.getLogger(LOGGER_NAME)
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    stream = io.StringIO()
    enable(stream)
    return stream


class TestRunLogger:
    def test_event_emits_one_json_line(self):
        stream = _fresh_stream()
        get_logger("run-0001-example").event("stage-finished", stage=0, rows_out=6)
        payload = json.loads(stream.getvalue())
        assert payload["run_id"] == "run-0001-example"
        assert payload["event"] == "stage-finished"
        assert payload["stage"] == 0
        assert payload["rows_out"] == 6
        assert payload["ts"] > 0

    def test_levels_filter(self):
        stream = _fresh_stream()
        get_logger("run-x").event("debug-detail", level=logging.DEBUG)
        assert stream.getvalue() == ""

    def test_enable_is_idempotent_per_stream(self):
        stream = _fresh_stream()
        first = enable(stream)
        second = enable(stream)
        assert first is second
        get_logger("run-x").event("once")
        assert len(stream.getvalue().splitlines()) == 1

    def test_plain_messages_still_render(self):
        stream = _fresh_stream()
        logging.getLogger(LOGGER_NAME).info("plain text")
        payload = json.loads(stream.getvalue())
        assert payload["event"] == "plain text"

    def test_events_lead_with_the_fixed_key_set(self):
        stream = _fresh_stream()
        get_logger("run-7").event("slow-query", kind="backtrace", seconds=0.2)
        payload = json.loads(stream.getvalue())
        # Every event opens with the same keys in the same order, so log
        # pipelines can key on position without probing.
        assert tuple(payload)[: len(EVENT_KEYS)] == EVENT_KEYS

    def test_ts_iso_matches_ts(self):
        from datetime import datetime, timezone

        stream = _fresh_stream()
        get_logger("run-7").event("marker")
        payload = json.loads(stream.getvalue())
        stamp = datetime.fromisoformat(payload["ts_iso"])
        assert stamp.tzinfo is not None
        assert stamp.timestamp() == pytest.approx(payload["ts"], abs=1e-3)
        assert stamp.astimezone(timezone.utc).tzname() == "UTC"

    def test_run_id_propagates_through_every_event(self):
        stream = _fresh_stream()
        logger = get_logger("run-deep")
        logger.event("one")
        logger.event("two", extra=1)
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["run_id"] == "run-deep" for line in lines)
