"""Unit tests for the stdlib sampling profiler."""

import io
import threading

import pytest

from repro.obs.profile import (
    PROFILE_ENV,
    PROFILE_OUT_ENV,
    SamplingProfiler,
    profile_enabled,
    profile_out_path,
)
from repro.obs.tracer import Tracer


class TestEnvKnobs:
    @pytest.mark.parametrize("raw", ["on", "1", "true", "YES"])
    def test_truthy_values_enable(self, monkeypatch, raw):
        monkeypatch.setenv(PROFILE_ENV, raw)
        assert profile_enabled() is True

    @pytest.mark.parametrize("raw", ["", "off", "0", "definitely"])
    def test_everything_else_disables(self, monkeypatch, raw):
        monkeypatch.setenv(PROFILE_ENV, raw)
        assert profile_enabled() is False

    def test_out_path(self, monkeypatch):
        monkeypatch.delenv(PROFILE_OUT_ENV, raising=False)
        assert profile_out_path() is None
        monkeypatch.setenv(PROFILE_OUT_ENV, "/tmp/p.folded")
        assert profile_out_path() == "/tmp/p.folded"


class TestSampling:
    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval=0)

    def test_synchronous_sample_sees_this_thread(self):
        profiler = SamplingProfiler(stage="s0")
        assert profiler.sample() >= 1
        lines = profiler.folded_lines()
        assert lines and all(line.startswith("s0;") for line in lines)
        # Every folded line ends with its sample count.
        assert all(line.rsplit(" ", 1)[1].isdigit() for line in lines)

    def test_stop_always_yields_a_sample(self):
        # A run far shorter than the sampling interval: the final sample at
        # stop() must still capture something.
        profiler = SamplingProfiler(interval=60.0).start()
        profiler.stop()
        assert profiler.sample_count >= 1

    def test_stop_is_idempotent(self):
        profiler = SamplingProfiler(interval=60.0).start()
        profiler.stop()
        count = profiler.sample_count
        profiler.stop()
        # The second stop takes one more voluntary sample but must not fail.
        assert profiler.sample_count >= count

    def test_mark_stage_attributes_samples(self):
        profiler = SamplingProfiler(stage="alpha")
        profiler.sample()
        profiler.mark_stage("beta")
        profiler.sample()
        totals = profiler.stage_totals()
        assert totals["alpha"] >= 1 and totals["beta"] >= 1

    def test_worker_threads_are_sampled(self):
        release = threading.Event()
        started = threading.Event()

        def worker():
            started.set()
            release.wait(5)

        thread = threading.Thread(target=worker, name="busy", daemon=True)
        thread.start()
        try:
            assert started.wait(5)
            profiler = SamplingProfiler(stage="s")
            profiler.sample()
        finally:
            release.set()
            thread.join()
        stacks = [stack for (_, stack) in profiler._counts]
        assert any(
            any("worker" in frame for frame in stack) for stack in stacks
        )


class TestExport:
    def test_write_folded_file_and_handle(self, tmp_path):
        profiler = SamplingProfiler(stage="s")
        profiler.sample()
        out = tmp_path / "p.folded"
        lines = profiler.write_folded(str(out))
        assert lines >= 1
        assert out.read_text().count("\n") == lines
        buffer = io.StringIO()
        assert profiler.write_folded(buffer) == lines
        assert buffer.getvalue() == out.read_text()

    def test_merge_into_tracer_emits_instants(self):
        profiler = SamplingProfiler(stage="stage-0 read")
        profiler.sample()
        tracer = Tracer()
        profiler.merge_into_tracer(tracer)
        marks = [s for s in tracer._instants if s.name.startswith("profile ")]
        assert len(marks) == 1
        assert marks[0].name == "profile stage-0 read"
        assert marks[0].args["samples"] >= 1
        assert marks[0].args["hz"] == 200
