"""Unit tests for the span tracer and its Chrome trace-event export."""

import json
import threading

import pytest

from repro.obs.tracer import (
    NULL_TRACER,
    Tracer,
    chrome_trace_events,
    get_tracer,
    iter_b_e_pairs,
    set_tracer,
    tracing,
)


class TestNullTracer:
    def test_is_the_default(self):
        assert get_tracer() is NULL_TRACER
        assert NULL_TRACER.enabled is False

    def test_span_returns_one_shared_noop_handle(self):
        first = NULL_TRACER.span("a", "run")
        second = NULL_TRACER.span("b", "stage", rows=3)
        assert first is second, "the disabled path must not allocate"
        with first as handle:
            handle.set(rows=7)  # swallowed
        assert NULL_TRACER.spans() == []

    def test_instant_is_a_noop(self):
        NULL_TRACER.instant("marker")
        assert NULL_TRACER.spans() == []


class TestTracer:
    def test_records_spans_with_args(self):
        tracer = Tracer()
        with tracer.span("stage-0 read", "stage", rows=6) as span:
            span.set(rows_out=3)
        (recorded,) = tracer.spans()
        assert recorded.name == "stage-0 read"
        assert recorded.category == "stage"
        assert recorded.args == {"rows": 6, "rows_out": 3}
        assert recorded.end >= recorded.start
        assert recorded.duration >= 0

    def test_find_filters_by_category_and_name(self):
        tracer = Tracer()
        with tracer.span("run", "run"):
            with tracer.span("stage-0 read", "stage"):
                pass
            with tracer.span("stage-1 fused", "stage"):
                pass
        assert len(tracer.find("stage")) == 2
        assert len(tracer.find("stage", name="read")) == 1
        assert len(tracer.find(name="stage-")) == 2

    def test_threads_get_distinct_tids(self):
        tracer = Tracer()
        with tracer.span("main-side", "task"):
            pass

        def work():
            with tracer.span("thread-side", "task"):
                pass

        worker = threading.Thread(target=work)
        worker.start()
        worker.join()
        tids = {span.tid for span in tracer.spans()}
        assert len(tids) == 2

    def test_len_counts_spans_and_instants(self):
        tracer = Tracer()
        with tracer.span("a", "run"):
            pass
        tracer.instant("marker", "run")
        assert len(tracer) == 2


class TestChromeExport:
    def _traced(self):
        tracer = Tracer()
        with tracer.span("run", "run", scheduler="serial"):
            with tracer.span("stage-0 read", "stage"):
                pass
            with tracer.span("stage-1 fused", "stage"):
                pass
        tracer.instant("marker", "run")
        return tracer

    def test_every_b_has_a_matching_e_and_required_keys(self):
        events = self._traced().chrome_events()
        pairs = list(iter_b_e_pairs(events))
        assert len(pairs) == 3
        for event in events:
            assert "ts" in event and "pid" in event and "tid" in event

    def test_metadata_events_name_process_and_threads(self):
        events = self._traced().chrome_events()
        meta = [event for event in events if event["ph"] == "M"]
        names = {event["name"] for event in meta}
        assert names == {"process_name", "thread_name"}

    def test_nesting_reconstructed_from_per_thread_order(self):
        events = self._traced().chrome_events()
        # The enclosing "run" span must open before and close after both
        # stage spans in per-thread event order (what viewers nest by).
        sequence = [
            (event["ph"], event["name"]) for event in events if event["ph"] in "BE"
        ]
        assert sequence[0] == ("B", "run")
        assert sequence[-1] == ("E", "run")

    def test_tie_break_orders_parent_around_child(self):
        # Construct spans with identical timestamps: the longer (parent)
        # span must still open first and close last.
        from repro.obs.tracer import Span

        parent = Span("parent", "run", 0.0, 2.0, tid=1, args={})
        child = Span("child", "run", 0.0, 2.0 - 1e-6, tid=1, args={})
        events = chrome_trace_events([child, parent])
        sequence = [
            (event["ph"], event["name"]) for event in events if event["ph"] in "BE"
        ]
        assert sequence == [
            ("B", "parent"),
            ("B", "child"),
            ("E", "child"),
            ("E", "parent"),
        ]

    def test_write_chrome_trace_is_loadable_json(self, tmp_path):
        path = tmp_path / "trace.json"
        self._traced().write_chrome_trace(str(path))
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        assert isinstance(payload["traceEvents"], list)
        list(iter_b_e_pairs(payload["traceEvents"]))  # raises on imbalance

    def test_write_jsonl_one_record_per_span(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = self._traced()
        tracer.write_jsonl(str(path))
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(records) == len(tracer.spans())
        assert {record["name"] for record in records} == {
            "run",
            "stage-0 read",
            "stage-1 fused",
        }


class TestWellFormednessChecker:
    def test_rejects_unclosed_b(self):
        events = [{"ph": "B", "name": "a", "pid": 1, "tid": 1, "ts": 0}]
        with pytest.raises(ValueError, match="unclosed"):
            list(iter_b_e_pairs(events))

    def test_rejects_e_without_b(self):
        events = [{"ph": "E", "name": "a", "pid": 1, "tid": 1, "ts": 0}]
        with pytest.raises(ValueError, match="without open B"):
            list(iter_b_e_pairs(events))

    def test_rejects_mismatched_names(self):
        events = [
            {"ph": "B", "name": "a", "pid": 1, "tid": 1, "ts": 0},
            {"ph": "E", "name": "b", "pid": 1, "tid": 1, "ts": 1},
        ]
        with pytest.raises(ValueError, match="mismatched"):
            list(iter_b_e_pairs(events))


class TestActivation:
    def test_tracing_installs_and_restores(self):
        tracer = Tracer()
        assert get_tracer() is NULL_TRACER
        with tracing(tracer) as active:
            assert active is tracer
            assert get_tracer() is tracer
        assert get_tracer() is NULL_TRACER

    def test_tracing_nests(self):
        outer, inner = Tracer(), Tracer()
        with tracing(outer):
            with tracing(inner):
                assert get_tracer() is inner
            assert get_tracer() is outer
        assert get_tracer() is NULL_TRACER

    def test_set_tracer_none_means_null(self):
        previous = set_tracer(None)
        assert previous is NULL_TRACER
        assert get_tracer() is NULL_TRACER
