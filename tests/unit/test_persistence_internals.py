"""Unit tests for the persistence encoders/decoders and type serialisation."""

import pytest

from repro.core.operator_provenance import (
    AggregationAssociations,
    BinaryAssociations,
    FlattenAssociations,
    InputRef,
    OperatorProvenance,
    ReadAssociations,
    UNDEFINED,
    UnaryAssociations,
)
from repro.core.paths import parse_path
from repro.errors import ProvenanceError, TypeInferenceError
from repro.nested.schema import Schema
from repro.nested.types import (
    BagType,
    INT,
    SetType,
    STRING,
    StructType,
    type_from_obj,
    type_to_obj,
)
from repro.pebble.persistence import (
    _decode_associations,
    _decode_operator,
    _encode_associations,
    _encode_operator,
)


class TestTypeSerialisation:
    @pytest.mark.parametrize(
        "typ",
        [
            INT,
            STRING,
            StructType([("a", INT), ("b", BagType(STRING))]),
            BagType(StructType([("x", SetType(INT))])),
            SetType(INT),
        ],
    )
    def test_roundtrip(self, typ):
        assert type_from_obj(type_to_obj(typ)) == typ

    def test_json_compatible(self):
        import json

        typ = StructType([("a", BagType(StructType([("b", INT)])))])
        assert type_from_obj(json.loads(json.dumps(type_to_obj(typ)))) == typ

    def test_bad_object_rejected(self):
        with pytest.raises(TypeInferenceError):
            type_from_obj({"weird": 1})
        with pytest.raises(TypeInferenceError):
            type_from_obj(42)


class TestAssociationCodec:
    @pytest.mark.parametrize(
        "associations",
        [
            ReadAssociations([1, 2, 3]),
            UnaryAssociations([(1, 10), (2, 11)]),
            FlattenAssociations([(1, 1, 10), (1, 2, 11)]),
            BinaryAssociations([(1, None, 10), (None, 2, 11), (3, 4, 12)]),
            AggregationAssociations([((1, 2), 10), ((3,), 11)]),
        ],
    )
    def test_roundtrip(self, associations):
        decoded = _decode_associations(_encode_associations(associations))
        assert type(decoded) is type(associations)
        if isinstance(associations, ReadAssociations):
            assert decoded.ids == associations.ids
        else:
            assert decoded.records == associations.records

    def test_unknown_kind_rejected(self):
        with pytest.raises(ProvenanceError, match="unknown association kind"):
            _decode_associations({"kind": "mystery"})


class TestOperatorCodec:
    def test_roundtrip_with_schema_and_manipulations(self):
        schema = Schema(StructType([("a", INT), ("tags", BagType(STRING))]))
        provenance = OperatorProvenance(
            5,
            "flatten",
            (InputRef(4, [parse_path("tags[pos]")], schema=schema),),
            [(parse_path("tags[pos]"), parse_path("tag"))],
            FlattenAssociations([(1, 1, 10)]),
            "flatten tags -> tag",
        )
        decoded = _decode_operator(_encode_operator(provenance))
        assert decoded.oid == 5
        assert decoded.op_type == "flatten"
        assert decoded.label == "flatten tags -> tag"
        assert decoded.input(0).predecessor == 4
        assert decoded.input(0).accessed == frozenset({parse_path("tags[pos]")})
        assert decoded.input(0).schema == schema
        assert decoded.manipulations_or_empty() == (
            (parse_path("tags[pos]"), parse_path("tag")),
        )

    def test_roundtrip_undefined_map(self):
        provenance = OperatorProvenance(
            3,
            "map",
            (InputRef(2, UNDEFINED, schema=None),),
            UNDEFINED,
            UnaryAssociations([(1, 2)]),
        )
        decoded = _decode_operator(_encode_operator(provenance))
        assert decoded.manipulations_undefined()
        assert decoded.input(0).accessed is UNDEFINED
        assert decoded.input(0).schema is None
