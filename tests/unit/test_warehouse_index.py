"""The persisted per-run index: build, round-trip, manifest wiring, probes."""

from __future__ import annotations

import json

import pytest

from repro.errors import ProvenanceError
from repro.warehouse import RunIndex, Warehouse, ensure_index
from repro.warehouse.index import INDEX_SEGMENT, MAX_TERM_LEN, walk_string_leaves
from repro.warehouse.reader import load_manifest


@pytest.fixture
def recorded(captured_example, tmp_path):
    """The running example recorded (indexed); returns (warehouse, record)."""
    warehouse = Warehouse.open(tmp_path / "wh")
    record = warehouse.record(captured_example, name="example")
    return warehouse, record


class TestBuildAndRoundTrip:
    def test_record_builds_and_catalogues_the_index(self, recorded):
        warehouse, record = recorded
        assert record.indexed
        run_dir = warehouse.run_dir(record.run_id)
        assert (run_dir / INDEX_SEGMENT).exists()
        manifest = load_manifest(run_dir)
        entry = manifest["index"]
        assert entry["segment"] == INDEX_SEGMENT
        assert entry["inputs"] > 0 and entry["terms"] > 0 and entry["items"] > 0

    def test_encode_decode_round_trip(self, recorded):
        warehouse, record = recorded
        run_dir = warehouse.run_dir(record.run_id)
        index = RunIndex.load(run_dir, load_manifest(run_dir))
        clone = RunIndex.decode(index.encode())
        assert clone.inputs == index.inputs
        assert clone.terms == index.terms
        assert clone.items == index.items
        assert clone.accessed == index.accessed
        assert clone.manipulated == index.manipulated

    def test_backfill_produces_identical_bytes(self, captured_example, tmp_path):
        """`repro index build` after the fact == index built at record time."""
        warehouse = Warehouse.open(tmp_path / "wh")
        at_record = warehouse.record(captured_example, name="indexed", index=True)
        backfilled = warehouse.record(captured_example, name="plain", index=False)
        assert not backfilled.indexed
        warehouse.build_index(backfilled.run_id)
        assert warehouse.resolve(backfilled.run_id).indexed
        first = (warehouse.run_dir(at_record.run_id) / INDEX_SEGMENT).read_bytes()
        second = (warehouse.run_dir(backfilled.run_id) / INDEX_SEGMENT).read_bytes()
        assert first == second

    def test_load_returns_none_when_unindexed(self, captured_example, tmp_path):
        warehouse = Warehouse.open(tmp_path / "wh")
        record = warehouse.record(captured_example, name="plain", index=False)
        run_dir = warehouse.run_dir(record.run_id)
        assert RunIndex.load(run_dir, load_manifest(run_dir)) is None
        assert warehouse.load_index(record.run_id) is None

    def test_build_index_is_idempotent(self, recorded):
        warehouse, record = recorded
        run_dir = warehouse.run_dir(record.run_id)
        before = (run_dir / INDEX_SEGMENT).read_bytes()
        warehouse.build_index(record.run_id)
        assert (run_dir / INDEX_SEGMENT).read_bytes() == before


class TestProbes:
    @pytest.fixture
    def loaded(self, recorded):
        warehouse, record = recorded
        run_dir = warehouse.run_dir(record.run_id)
        manifest = load_manifest(run_dir)
        store = warehouse.load(record.run_id).store
        return RunIndex.load(run_dir, manifest), store, run_dir, manifest

    def test_inputs_cover_every_consumed_id(self, loaded):
        """Every id an operator's associations consume maps back to it."""
        index, store, _, _ = loaded
        for provenance in store.operators():
            oid = provenance.oid
            if store.is_source(oid):
                continue
            for ids in _input_sides(provenance):
                for item_id in ids:
                    assert oid in index.consumers(item_id)

    def test_term_postings_locate_the_item(self, loaded):
        index, store, _, _ = loaded
        postings = index.candidates("lp")
        assert postings, "sentinel id_str 'lp' must be indexed"
        for oid, item_id in postings:
            item = store.source_item(oid, item_id)
            from repro.nested.json_io import _jsonable

            assert "lp" in set(walk_string_leaves(_jsonable(item)))

    def test_over_cap_term_probe_raises(self, loaded):
        index, _, _, _ = loaded
        with pytest.raises(ProvenanceError):
            index.candidates("x" * (MAX_TERM_LEN + 1))

    def test_item_ranges_decode_the_exact_item(self, loaded):
        """The ITEMS byte ranges decode one item without touching the block."""
        index, store, run_dir, manifest = loaded
        checked = 0
        for oid, ranges in index.items.items():
            for item_id in ranges:
                direct = RunIndex.load(run_dir, manifest).source_item(
                    run_dir, manifest, oid, item_id
                )
                assert repr(direct) == repr(store.source_item(oid, item_id))
                checked += 1
        assert checked > 0

    def test_paths_index_lists_accessed_operators(self, loaded):
        index, store, _, _ = loaded
        for path, oids in index.accessed.items():
            for oid in oids:
                provenance = store.get(oid)
                accessed = {
                    str(p)
                    for ref in provenance.inputs
                    for p in ref.accessed_or_empty()
                }
                assert path in accessed

    def test_unknown_probes_are_empty(self, loaded):
        index, _, _, _ = loaded
        assert index.consumers(10**12) == ()
        assert index.candidates("no-such-term-anywhere") == ()
        assert index.operators_touching("no.such.path") == {
            "accessed": (),
            "manipulated": (),
        }


class TestManifestWiring:
    def test_ensure_index_rewrites_manifest_atomically(
        self, captured_example, tmp_path
    ):
        warehouse = Warehouse.open(tmp_path / "wh")
        record = warehouse.record(captured_example, name="plain", index=False)
        run_dir = warehouse.run_dir(record.run_id)
        assert "index" not in load_manifest(run_dir)
        entry = ensure_index(run_dir)
        manifest = load_manifest(run_dir)
        assert manifest["index"] == entry
        # The rewritten manifest still loads the run.
        assert warehouse.load(record.run_id).store is not None

    def test_catalog_round_trips_indexed_flag(self, recorded):
        warehouse, record = recorded
        reopened = Warehouse.open(warehouse.root)
        assert reopened.resolve(record.run_id).indexed

    def test_pre_index_catalogs_still_load(self, recorded):
        """Catalogs written before 1.3 carry no 'indexed' key."""
        warehouse, record = recorded
        path = warehouse.root / "catalog.json"
        document = json.loads(path.read_text())
        for entry in document["runs"]:
            del entry["indexed"]
        path.write_text(json.dumps(document))
        reopened = Warehouse.open(warehouse.root)
        assert reopened.resolve(record.run_id).indexed is False
        # The index itself is still discovered via the manifest.
        assert reopened.load_index(record.run_id) is not None


def _input_sides(provenance):
    """Consumed-id groups per association record, mirroring the index build."""
    from repro.core.operator_provenance import (
        AggregationAssociations,
        BinaryAssociations,
        FlattenAssociations,
        UnaryAssociations,
    )

    associations = provenance.associations
    if isinstance(associations, UnaryAssociations):
        return [[id_in] for id_in, _ in associations.records]
    if isinstance(associations, FlattenAssociations):
        return [[id_in] for id_in, _, _ in associations.records]
    if isinstance(associations, BinaryAssociations):
        return [
            [side for side in (id_in1, id_in2) if side is not None]
            for id_in1, id_in2, _ in associations.records
        ]
    if isinstance(associations, AggregationAssociations):
        return [list(members) for members, _ in associations.records]
    return []
