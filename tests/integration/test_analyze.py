"""Explain-analyze and slow-query capture, end to end.

Pins the PR's acceptance properties: breakdown phase times sum to the
measured total (within 5%) on both loading methods, query answers are
byte-identical with and without analysis attached, and an injected-delay
query surfaces in ``/debug/slow`` and ``repro stats --slow``.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.cli import main as cli_main
from repro.obs.breakdown import PHASES, QueryBreakdown
from repro.obs.metrics import MetricsRegistry
from repro.obs.slowlog import SLOW_QUERY_ENV, SlowQueryLog, set_slow_log
from repro.serve import ProvenanceServer, QueryService, ServeClient, ServeConfig
from repro.warehouse import Warehouse
from repro.workloads.scenarios import RUNNING_EXAMPLE_PATTERN


@pytest.fixture
def recorded(captured_example, tmp_path):
    """The running example in a warehouse; returns (warehouse, run_id)."""
    warehouse = Warehouse.open(tmp_path / "wh")
    record = warehouse.record(captured_example, name="example")
    return warehouse, record.run_id


@pytest.fixture
def ring():
    fresh = SlowQueryLog()
    previous = set_slow_log(fresh)
    yield fresh
    set_slow_log(previous)


def _assert_sums(breakdown: QueryBreakdown) -> None:
    assert breakdown.total_seconds > 0
    assert set(breakdown.phases) <= set(PHASES)
    deviation = abs(breakdown.phase_sum() - breakdown.total_seconds)
    assert deviation <= 0.05 * breakdown.total_seconds


class TestBreakdownSums:
    def test_backtrace_phases_sum_to_total(self, recorded):
        warehouse, run_id = recorded
        breakdown = QueryBreakdown()
        warehouse.backtrace(run_id, RUNNING_EXAMPLE_PATTERN, breakdown=breakdown)
        _assert_sums(breakdown)
        assert breakdown.phases["segment_decode"] > 0
        assert breakdown.counters["segments_decoded"] > 0

    @pytest.mark.parametrize("method", ["lazy", "eager"])
    def test_forward_phases_sum_to_total(self, recorded, method):
        warehouse, run_id = recorded
        breakdown = QueryBreakdown()
        result = warehouse.forward(
            run_id, 'root{//id_str="lp"}', method=method, breakdown=breakdown
        )
        _assert_sums(breakdown)
        assert breakdown.counters["method"] == method
        assert breakdown.counters["outputs"] == len(result.output_ids)


class TestAnswersUnchanged:
    def test_backtrace_identical_with_and_without_analyze(self, recorded):
        warehouse, run_id = recorded
        plain, _ = warehouse.backtrace(run_id, RUNNING_EXAMPLE_PATTERN)
        analyzed, _ = warehouse.backtrace(
            run_id, RUNNING_EXAMPLE_PATTERN, breakdown=QueryBreakdown()
        )
        assert analyzed.matched_output_ids == plain.matched_output_ids
        assert analyzed.render() == plain.render()

    def test_forward_identical_with_and_without_analyze(self, recorded):
        warehouse, run_id = recorded
        plain = warehouse.forward(run_id, 'root{//id_str="lp"}')
        analyzed = warehouse.forward(
            run_id, 'root{//id_str="lp"}', breakdown=QueryBreakdown()
        )
        assert json.dumps(analyzed.to_json(), sort_keys=True) == json.dumps(
            plain.to_json(), sort_keys=True
        )


class TestServedAnalyze:
    def test_query_analyze_block_and_identical_result(self, recorded, ring):
        warehouse, run_id = recorded
        service = QueryService.open(
            ServeConfig(root=str(warehouse.root), port=0),
            registry=MetricsRegistry(),
        )
        with ProvenanceServer(service, port=0) as server:
            client = ServeClient(server.url)
            plain = client.query(RUNNING_EXAMPLE_PATTERN)
            analyzed = client.query(RUNNING_EXAMPLE_PATTERN, analyze=True)
            assert "analyze" not in plain
            block = analyzed["analyze"]
            total = block["total_seconds"]
            assert total > 0
            assert abs(sum(block["phases"].values()) - total) <= 0.05 * total
            assert analyzed["result"] == plain["result"]
            # Analyze bypasses the pattern-result cache.
            assert analyzed["server"]["cached"] is False

    def test_forward_analyze_block(self, recorded, ring):
        warehouse, run_id = recorded
        service = QueryService.open(
            ServeConfig(root=str(warehouse.root), port=0),
            registry=MetricsRegistry(),
        )
        with ProvenanceServer(service, port=0) as server:
            client = ServeClient(server.url)
            payload = client.forward('root{//id_str="lp"}', analyze=True)
            block = payload["analyze"]
            total = block["total_seconds"]
            assert total > 0
            assert abs(sum(block["phases"].values()) - total) <= 0.05 * total


class TestSlowQueryCapture:
    def test_injected_delay_reaches_debug_slow(self, recorded, ring, monkeypatch):
        monkeypatch.setenv(SLOW_QUERY_ENV, "10")
        warehouse, run_id = recorded
        service = QueryService.open(
            ServeConfig(root=str(warehouse.root), port=0),
            registry=MetricsRegistry(),
        )
        service.query_hook = lambda: time.sleep(0.05)
        with ProvenanceServer(service, port=0) as server:
            client = ServeClient(server.url)
            client.query(RUNNING_EXAMPLE_PATTERN)
            slow = client.debug_slow()
        assert slow["threshold_ms"] == 10.0
        assert slow["total"] >= 1
        entry = slow["entries"][0]
        assert entry["kind"] == "query"
        assert entry["run_id"] == run_id
        assert entry["seconds"] >= 0.05
        # The injected delay is unattributed work: it must land in the
        # breakdown (as "other"), keeping phase sums honest.
        assert entry["breakdown"]["phases"]["other"] >= 0.04

    def test_fast_queries_stay_out(self, recorded, ring, monkeypatch):
        monkeypatch.setenv(SLOW_QUERY_ENV, "60000")
        warehouse, run_id = recorded
        warehouse.backtrace(run_id, RUNNING_EXAMPLE_PATTERN)
        assert len(ring) == 0

    def test_stats_slow_cli_local(self, recorded, ring, monkeypatch, capsys):
        monkeypatch.setenv(SLOW_QUERY_ENV, "0")
        warehouse, run_id = recorded
        assert cli_main([
            "stats", run_id, "--root", str(warehouse.root),
            "--pattern", RUNNING_EXAMPLE_PATTERN, "--slow",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["threshold_ms"] == 0.0
        assert payload["total"] >= 1
        assert payload["entries"][0]["kind"] == "backtrace"
        assert payload["entries"][0]["run_id"] == run_id

    def test_stats_slow_cli_remote(self, recorded, ring, monkeypatch, capsys):
        monkeypatch.setenv(SLOW_QUERY_ENV, "0")
        warehouse, run_id = recorded
        service = QueryService.open(
            ServeConfig(root=str(warehouse.root), port=0),
            registry=MetricsRegistry(),
        )
        with ProvenanceServer(service, port=0) as server:
            client = ServeClient(server.url)
            client.query(RUNNING_EXAMPLE_PATTERN)
            assert cli_main(["stats", "--remote", server.url, "--slow"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total"] >= 1
        assert payload["entries"][0]["kind"] == "query"


class TestAnalyzeCli:
    def test_warehouse_query_analyze_prints_breakdown(
        self, recorded, capsys
    ):
        warehouse, run_id = recorded
        assert cli_main([
            "warehouse", "query", run_id, RUNNING_EXAMPLE_PATTERN,
            "--root", str(warehouse.root), "--analyze",
        ]) == 0
        out = capsys.readouterr().out
        assert "query breakdown:" in out
        assert "segment_decode" in out

    def test_trace_forward_analyze_prints_breakdown(self, recorded, capsys):
        warehouse, run_id = recorded
        assert cli_main([
            "trace-forward", run_id, "--pattern", 'root{//id_str="lp"}',
            "--root", str(warehouse.root), "--analyze",
        ]) == 0
        out = capsys.readouterr().out
        assert "query breakdown:" in out

    def test_trace_forward_analyze_json(self, recorded, capsys):
        warehouse, run_id = recorded
        assert cli_main([
            "trace-forward", run_id, "--pattern", 'root{//id_str="lp"}',
            "--root", str(warehouse.root), "--analyze", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "analyze" in payload
        assert payload["analyze"]["total_seconds"] > 0
