"""Integration tests for the provenance warehouse (record once, query later).

The acceptance path of the subsystem: capture the running example, record
it into a warehouse, reopen the warehouse from disk (a fresh object, as
after a process restart), and check that a lazy tree-pattern backtrace
returns exactly the in-memory answer -- while the segment-cache counters
prove how little of the run the query actually decoded.
"""

import pytest

from repro.cli import main
from repro.engine.metrics import SegmentCacheMetrics
from repro.engine.session import Session
from repro.errors import ProvenanceError
from repro.pebble.query import query_provenance
from repro.warehouse import LazyProvenanceStore, Warehouse
from repro.workloads.scenarios import RUNNING_EXAMPLE_PATTERN


@pytest.fixture
def recorded(captured_example, tmp_path):
    """The running example recorded into a warehouse; returns (root, run_id)."""
    warehouse = Warehouse.open(tmp_path / "wh")
    record = warehouse.record(captured_example, name="example")
    return tmp_path / "wh", record.run_id


class TestRecordAndCatalog:
    def test_record_creates_catalogued_run(self, recorded):
        root, run_id = recorded
        warehouse = Warehouse.open(root)
        runs = warehouse.runs()
        assert [record.run_id for record in runs] == [run_id]
        assert runs[0].name == "example"
        assert runs[0].operator_count == 9
        assert runs[0].row_count == 3
        assert runs[0].total_bytes > 0

    def test_many_runs_under_one_root(self, captured_example, tmp_path):
        warehouse = Warehouse.open(tmp_path / "wh")
        first = warehouse.record(captured_example, name="example")
        second = warehouse.record(captured_example, name="example")
        assert first.run_id != second.run_id
        reopened = Warehouse.open(tmp_path / "wh")
        assert len(reopened) == 2
        # A name resolves to its newest run; explicit ids stay addressable.
        assert reopened.load("example").store.run_id == second.run_id
        assert reopened.load(first.run_id).store.run_id == first.run_id

    def test_plain_execution_rejected(self, example_pipeline, tmp_path):
        execution = example_pipeline.execute(capture=False)
        with pytest.raises(ProvenanceError):
            Warehouse.open(tmp_path / "wh").record(execution)

    def test_root_must_be_a_directory(self, tmp_path):
        afile = tmp_path / "not-a-dir"
        afile.write_text("x")
        with pytest.raises(ProvenanceError):
            Warehouse.open(afile)


class TestLazyBacktrace:
    def test_backtrace_identical_to_in_memory(self, captured_example, recorded):
        """The acceptance criterion: restart, query, same answer."""
        before = query_provenance(captured_example, RUNNING_EXAMPLE_PATTERN)

        root, run_id = recorded
        warehouse = Warehouse.open(root)  # fresh object: simulated restart
        after, _ = warehouse.backtrace(run_id, RUNNING_EXAMPLE_PATTERN, num_partitions=2)

        assert after.all_ids() == before.all_ids()
        assert after.matched_output_ids == before.matched_output_ids
        assert after.render() == before.render()

    def test_query_decodes_reachable_operators_once(self, recorded):
        root, run_id = recorded
        warehouse = Warehouse.open(root)
        execution = warehouse.load(run_id, num_partitions=2)
        store = execution.store
        assert isinstance(store, LazyProvenanceStore)

        query_provenance(execution, RUNNING_EXAMPLE_PATTERN)
        # Every operator of the running example sits on the backtrace path
        # from the sink; each decoded exactly once, never twice.
        first_misses = store.metrics.misses
        assert first_misses == len(store) == 9

        query_provenance(execution, RUNNING_EXAMPLE_PATTERN)
        assert store.metrics.misses == first_misses, "second query must hit the cache"
        assert store.metrics.hits > 0

    def test_unmatched_branch_items_never_decode(self, tmp_path):
        """Item blocks decode per contributing source, not per run."""
        session = Session(num_partitions=2)
        left = session.create_dataset(
            [{"grp": "a", "val": 1}, {"grp": "a", "val": 2}], "left.json"
        )
        right = session.create_dataset([{"grp": "b", "val": 3}], "right.json")
        execution = left.union(right).execute(capture=True)

        warehouse = Warehouse.open(tmp_path / "wh")
        run_id = warehouse.record(execution, name="union").run_id

        result, metrics = warehouse.backtrace(run_id, 'root{/grp="a"}', num_partitions=2)
        by_name = {source.name: source for source in result.sources}
        assert len(by_name["left.json"]) == 2
        assert len(by_name["right.json"]) == 0
        # Both read operators' records decode (the backtrace walks them),
        # but only the contributing source pays for its item block.
        assert metrics.item_misses == 1

    def test_index_only_lookups_decode_nothing(self, captured_example, recorded):
        root, run_id = recorded
        warehouse = Warehouse.open(root)
        metrics = SegmentCacheMetrics()
        store = LazyProvenanceStore(warehouse.run_dir(run_id), metrics=metrics)

        assert len(store) == 9
        assert store.is_source(1) and not store.is_source(9)
        assert store.source_name(1) == "tweets.json"
        lazy_report = store.size_report()
        assert metrics.misses == 0 and metrics.item_misses == 0, (
            "catalog/index lookups must not decode segments"
        )
        eager_report = captured_example.store.size_report()
        assert lazy_report.lineage_bytes == eager_report.lineage_bytes
        assert lazy_report.structural_bytes == eager_report.structural_bytes

    def test_inspect_serves_from_the_index(self, recorded):
        root, run_id = recorded
        summary = Warehouse.open(root).inspect(run_id)
        assert summary["run_id"] == run_id
        assert summary["rows"] == 3
        assert len(summary["operators"]) == 9
        reads = [op for op in summary["operators"] if op["kind"] == "read"]
        assert {op["source_name"] for op in reads} == {"tweets.json"}

    def test_eviction_keeps_answers_correct(self, captured_example, recorded):
        """A tiny cache thrashes but never changes the query answer."""
        root, run_id = recorded
        result, metrics = Warehouse.open(root).backtrace(
            run_id, RUNNING_EXAMPLE_PATTERN, num_partitions=2, cache_size=2
        )
        before = query_provenance(captured_example, RUNNING_EXAMPLE_PATTERN)
        assert result.render() == before.render()
        assert metrics.evictions > 0


class TestEvictionAccounting:
    @pytest.fixture
    def store(self, recorded):
        root, run_id = recorded
        metrics = SegmentCacheMetrics()
        return LazyProvenanceStore(
            Warehouse.open(root).run_dir(run_id), cache_size=1, metrics=metrics
        )

    def test_operator_evictions_count_each_displacement(self, store):
        metrics = store.metrics
        store.get(9)
        assert metrics.evictions == 0, "filling to capacity evicts nothing"
        store.get(8)
        assert metrics.evictions == 1
        store.get(9)  # re-decode: 9 was displaced, so this evicts 8 again
        assert metrics.evictions == 2
        assert metrics.misses == 3 and metrics.hits == 0

    def test_item_block_evictions_count_separately(self, store):
        # Operators 1 and 4 are the running example's two read operators.
        store.source_items(1)
        store.source_items(4)
        assert store.metrics.item_misses == 2
        assert store.metrics.evictions == 1

    def test_within_capacity_never_evicts(self, recorded):
        root, run_id = recorded
        store = LazyProvenanceStore(
            Warehouse.open(root).run_dir(run_id), cache_size=64
        )
        for oid in range(1, 10):
            store.get(oid)
            store.get(oid)
        assert store.metrics.evictions == 0
        assert store.metrics.hits == store.metrics.misses == 9

    def test_reset_clears_every_counter(self, store):
        store.get(9)
        store.get(8)
        store.source_items(1)
        metrics = store.metrics
        assert metrics.lookups > 0 and metrics.bytes_read > 0
        metrics.reset()
        assert metrics.to_json() == {
            "hits": 0,
            "misses": 0,
            "item_hits": 0,
            "item_misses": 0,
            "bytes_read": 0,
            "evictions": 0,
            "hit_rate": 0.0,
        }


class TestWarehouseCli:
    def test_record_ls_inspect_query(self, tmp_path, capsys):
        root = str(tmp_path / "wh")
        assert main(["warehouse", "record", "example", "--root", root]) == 0
        assert main(["warehouse", "ls", "--root", root]) == 0
        assert main(["warehouse", "inspect", "example", "--root", root]) == 0
        assert (
            main(
                [
                    "warehouse",
                    "query",
                    "example",
                    RUNNING_EXAMPLE_PATTERN,
                    "--root",
                    root,
                    "--partitions",
                    "2",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "run-0001-example" in output
        assert "segments decoded: 9/9" in output
        assert "contributing" in output
        assert '"bytes_read"' in output, "query must print the cache accounting"

    def test_query_trace_flag_writes_valid_chrome_trace(self, tmp_path, capsys):
        import json

        from repro.obs.tracer import iter_b_e_pairs

        root = str(tmp_path / "wh")
        trace_path = tmp_path / "query-trace.json"
        assert main(["warehouse", "record", "example", "--root", root]) == 0
        assert (
            main(
                [
                    "warehouse",
                    "query",
                    "example",
                    RUNNING_EXAMPLE_PATTERN,
                    "--root",
                    root,
                    "--partitions",
                    "2",
                    "--trace",
                    str(trace_path),
                ]
            )
            == 0
        )
        payload = json.loads(trace_path.read_text())
        events = payload["traceEvents"]
        list(iter_b_e_pairs(events))  # raises on imbalance
        names = {event["name"] for event in events if event["ph"] == "B"}
        assert {"pattern-match", "backtrace", "source-resolution"} <= names
        assert any(name.startswith("segment-read") for name in names)
        assert all("ts" in e and "pid" in e and "tid" in e for e in events)

    def test_inspect_probe_reports_cache_accounting(self, tmp_path, capsys):
        root = str(tmp_path / "wh")
        assert main(["warehouse", "record", "example", "--root", root]) == 0
        assert (
            main(
                [
                    "warehouse",
                    "inspect",
                    "example",
                    "--root",
                    root,
                    "--probe",
                    RUNNING_EXAMPLE_PATTERN,
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "segment cache:" in output
        assert '"misses": 9' in output

    def test_stats_command(self, tmp_path, capsys):
        import json

        root = str(tmp_path / "wh")
        assert main(["warehouse", "record", "example", "--root", root]) == 0
        assert main(["stats", "example", "--root", root]) == 0
        text = capsys.readouterr().out
        assert "# TYPE repro_run_operators gauge" in text
        assert "repro_run_operators" in text and "} 9" in text
        assert "repro_run_capture_seconds_total" in text

        assert (
            main(
                [
                    "stats",
                    "--root",
                    root,
                    "--pattern",
                    RUNNING_EXAMPLE_PATTERN,
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        names = {entry["name"] for entry in payload["metrics"]}
        assert "repro_segment_cache_misses_total" in names
        assert "repro_run_rows" in names
