"""The paper's running example, end to end (Sec. 2, Tabs. 1-2, Figs. 1-4).

These tests pin the reproduction to the paper's published artefacts: the
pipeline result of Tab. 2, the provenance question of Fig. 4, and the
backtracing trees of Fig. 2.
"""

import pytest

from repro.baselines.lineage import LineageQuerier
from repro.nested.values import Bag, DataItem
from repro.pebble.query import query_provenance


def _result_by_user(execution):
    return {item["user"]["id_str"]: item for item in execution.items()}


class TestTable2Result:
    def test_three_distinct_users(self, captured_example):
        assert set(_result_by_user(captured_example)) == {"lp", "ls", "jm"}

    def test_lp_row_matches_table_2(self, captured_example):
        lp = _result_by_user(captured_example)["lp"]
        assert lp["user"] == DataItem(id_str="lp", name="Lisa Paul")
        texts = [tweet["text"] for tweet in lp["tweets"]]
        assert texts == [
            "Hello @ls @jm @ls",
            "Hello World",
            "Hello World",
            "Hello @lp",
        ]

    def test_ls_row_has_duplicate_mention_text(self, captured_example):
        ls = _result_by_user(captured_example)["ls"]
        texts = [tweet["text"] for tweet in ls["tweets"]]
        assert texts.count("Hello @ls @jm @ls") == 2

    def test_jm_row(self, captured_example):
        jm = _result_by_user(captured_example)["jm"]
        texts = sorted(tweet["text"] for tweet in jm["tweets"])
        assert texts == ["Hello @ls @jm @ls", "This is me @jm", "This is me @jm"]

    def test_tweets_are_nested_bags(self, captured_example):
        for item in captured_example.items():
            assert isinstance(item["tweets"], Bag)


class TestFigure4Query:
    def test_matches_only_lp_row(self, captured_example, example_pattern):
        provenance = query_provenance(captured_example, example_pattern)
        assert len(provenance.matched_output_ids) == 1
        matched = provenance.matched_output_ids[0]
        row = dict(captured_example.rows())[matched]
        assert row["user"]["id_str"] == "lp"


class TestFigure2Backtrace:
    @pytest.fixture
    def provenance(self, captured_example, example_pattern):
        return query_provenance(captured_example, example_pattern)

    def test_only_upper_read_contributes(self, provenance):
        upper, lower = provenance.sources
        assert upper.ids() == [2, 3]  # the two "Hello World" tweets (items 12, 17)
        assert lower.is_empty()

    def test_contributing_paths_match_figure_2(self, provenance):
        entry = provenance.sources[0].entry(2)
        assert entry.contributing_paths() == ["text", "user", "user.id_str"]

    def test_influencing_paths_match_figure_2(self, provenance):
        """retweet_cnt (filter) and user.name (grouping) influence the result."""
        entry = provenance.sources[0].entry(2)
        assert entry.influencing_paths() == ["retweet_count", "user.name"]

    def test_name_accessed_by_grouping_and_manipulated_by_selects(self, provenance):
        """Fig. 2: name is accessed by operator 9 and manipulated by 3 and 8."""
        entry = provenance.sources[0].entry(2)
        manipulated = entry.manipulated_by()["user.name"]
        accessed = entry.accessed_by()["user.name"]
        select_upper_oid = 3
        select_restructure_oid = 8
        group_oid = 9
        assert select_upper_oid in manipulated
        assert select_restructure_oid in manipulated
        assert group_oid in accessed

    def test_retweet_count_accessed_by_filter(self, provenance):
        entry = provenance.sources[0].entry(3)
        assert entry.accessed_by()["retweet_count"] == [2]

    def test_both_duplicate_tweets_have_identical_trees(self, provenance):
        first = provenance.sources[0].entry(2)
        second = provenance.sources[0].entry(3)
        assert first.tree.render() == second.tree.render()


class TestLineageComparison:
    def test_lineage_masks_the_duplicates(self, captured_example, example_pattern):
        """Sec. 2: lineage returns *all* tweets containing user lp."""
        provenance = query_provenance(captured_example, example_pattern)
        querier = LineageQuerier(captured_example.store)
        lineage = querier.backtrace_ids(
            captured_example.root.oid, set(provenance.matched_output_ids)
        )
        lineage_ids = set().union(*(source.ids for source in lineage))
        structural_ids = provenance.lineage_ids()
        # Structural provenance pinpoints {2, 3}; lineage additionally
        # returns tweet 1 (authored by lp) and tweet 5 (mentions lp).
        assert structural_ids == {2, 3}
        assert structural_ids < lineage_ids
        assert {1, 2, 3} <= lineage_ids


class TestMentionBranchQuery:
    def test_flattened_mention_is_pinpointed(self, captured_example):
        """Tracing jm's 'Hello @ls @jm @ls' goes through the lower branch to
        the second entry of tweet 1's user_mentions."""
        provenance = query_provenance(
            captured_example,
            'root{/user{/id_str="jm"}, /tweets{/text="Hello @ls @jm @ls"}}',
        )
        upper, lower = provenance.sources
        assert upper.is_empty()
        # Identifiers are assigned in execution order; the second read's
        # items carry ids 14-18, so tweet 1 of Tab. 1 is id 14 here.
        assert lower.ids() == [14]
        entry = lower.entry(14)
        assert "user_mentions[2].id_str" in entry.contributing_paths()
