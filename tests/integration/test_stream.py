"""Streaming capture end to end: live runs through the serve tier.

The contract pinned here spans the three layers the stream subsystem
touches.  Capture: micro-batches append epochs to a live run that stays
queryable throughout.  Serve: a live run's cached answers drop exactly
when *its* segment epoch moves (append, seal, retention) while batch
runs' answers stay resident, and ``GET /v1/runs/<id>`` reports liveness
and the watermark.  Retention: a TTL sweep expires old epochs, writes a
verified receipt, and the swept run keeps answering (empty once fully
erased) instead of failing.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.engine.expressions import col, collect_list, count
from repro.obs.metrics import MetricsRegistry
from repro.pebble.query import query_provenance
from repro.serve import ProvenanceServer, QueryService, ServeClient, ServeConfig
from repro.stream import StreamSession, TumblingWindow, window_by
from repro.warehouse import Warehouse

PATTERN = 'root{/user="u1", /ids}'


def _rows(lo: int, hi: int) -> list[dict]:
    return [{"id": i, "user": f"u{i % 2}", "ts": float(i)} for i in range(lo, hi)]


def _open_stream(warehouse, name: str = "feed") -> StreamSession:
    stream = StreamSession(warehouse=warehouse, name=name, num_partitions=2)
    windowed = window_by(
        stream.dataset(), col("ts"), TumblingWindow(4.0), col("user")
    ).agg(collect_list(col("id")).alias("ids"), count().alias("n"))
    stream.open(windowed)
    return stream


def _service(root) -> QueryService:
    return QueryService.open(
        ServeConfig(root=str(root / "wh"), port=0), registry=MetricsRegistry()
    )


class TestLiveQuerying:
    def test_serve_answers_match_direct_query_while_live(self, tmp_path):
        stream = _open_stream(Warehouse.open(tmp_path / "wh"))
        stream.ingest(_rows(0, 6))
        stream.ingest(_rows(6, 10))
        service = _service(tmp_path)
        served = service.query(PATTERN, run_id=stream.run_id)
        direct = query_provenance(
            stream.warehouse.load(stream.run_id), PATTERN
        )
        from repro.serve import result_to_json

        assert served["result"] == result_to_json(direct)
        assert served["server"]["cached"] is False
        assert service.query(PATTERN, run_id=stream.run_id)["server"]["cached"]

    def test_run_detail_reports_liveness_and_watermark(self, tmp_path):
        stream = _open_stream(Warehouse.open(tmp_path / "wh"))
        stream.ingest(_rows(0, 6))
        service = _service(tmp_path)
        with ProvenanceServer(service, port=0) as server:
            client = ServeClient(server.url)
            detail = client.run(stream.run_id)
            assert detail["live"] is True
            assert detail["watermark"] == 5.0
            assert [entry["epoch"] for entry in detail["epochs"]] == [1]
            stream.finish(compact=False)
            service.check_catalog()
            sealed = client.run(stream.run_id)
        assert sealed["live"] is False
        # The final flush emits the still-open windows as one more epoch.
        assert [entry["epoch"] for entry in sealed["epochs"]] == [1, 2]

    def test_compacted_run_serves_through_the_batch_path(self, tmp_path):
        stream = _open_stream(Warehouse.open(tmp_path / "wh"))
        stream.ingest(_rows(0, 6))
        stream.ingest(_rows(6, 10))
        stream.finish(compact=True)
        service = _service(tmp_path)
        detail = service.run_detail(stream.run_id)
        assert "live" not in detail  # batch layout: no epoch surface
        from repro.serve import result_to_json

        compacted = service.query(PATTERN, run_id=stream.run_id)
        direct = query_provenance(stream.warehouse.load(stream.run_id), PATTERN)
        assert compacted["result"] == result_to_json(direct)
        assert compacted["result"]["matched_output_ids"]


class TestSegmentInvalidation:
    def test_append_invalidates_only_the_live_run(self, tmp_path):
        warehouse = Warehouse.open(tmp_path / "wh")
        stream = _open_stream(warehouse)
        stream.ingest(_rows(0, 6))
        batch_session = _open_stream(warehouse, name="done")
        batch_session.ingest(_rows(0, 6))
        batch_record = batch_session.finish(compact=True)

        service = _service(tmp_path)
        for run in (stream.run_id, batch_record.run_id):
            service.query(PATTERN, run_id=run)
            assert service.query(PATTERN, run_id=run)["server"]["cached"]

        stream.ingest(_rows(6, 10))
        assert service.check_catalog() is True
        assert service.query(PATTERN, run_id=batch_record.run_id)["server"]["cached"]
        fresh = service.query(PATTERN, run_id=stream.run_id)
        assert fresh["server"]["cached"] is False
        invalidations = service.registry.counter(
            "repro_serve_segment_invalidations_total"
        )
        assert invalidations.value >= 1.0


class TestRetention:
    def test_sweep_writes_verified_receipt_and_keeps_run_answering(self, tmp_path):
        stream = _open_stream(Warehouse.open(tmp_path / "wh"))
        stream.ingest(_rows(0, 6))
        stream.ingest(_rows(6, 10))
        warehouse = stream.warehouse
        before = query_provenance(warehouse.load(stream.run_id), PATTERN)
        assert before.matched_output_ids

        time.sleep(0.05)
        report = warehouse.retain(0.01, run_id=stream.run_id)
        assert report["swept"] == 1
        (receipt,) = report["receipts"]
        assert receipt["run_id"] == stream.run_id
        assert [entry["epoch"] for entry in receipt["expired_epochs"]] == [1, 2]
        assert receipt["verified"] == {
            "sink_ids_absent": True,
            "source_ids_absent": True,
        }
        on_disk = json.loads(
            (warehouse.run_dir(stream.run_id) / "retention" / "receipt-0002.json")
            .read_text()
        )
        assert on_disk["digest"] == receipt["digest"]

        # Fully erased: the run answers empty, and still accepts new epochs.
        erased = query_provenance(warehouse.load(stream.run_id), PATTERN)
        assert erased.matched_output_ids == []
        stream.ingest(_rows(10, 16))
        refilled = query_provenance(warehouse.load(stream.run_id), PATTERN)
        assert refilled.matched_output_ids

    def test_service_sweep_counts_and_invalidates(self, tmp_path):
        stream = _open_stream(Warehouse.open(tmp_path / "wh"))
        stream.ingest(_rows(0, 6))
        service = _service(tmp_path)
        service.query(PATTERN, run_id=stream.run_id)
        time.sleep(0.05)
        report = service.sweep_retention(0.01)
        assert report["swept"] == 1
        registry = service.registry
        assert registry.counter("repro_serve_retention_sweeps_total").value == 1.0
        assert registry.counter("repro_serve_segments_expired_total").value >= 1.0
        swept = service.query(PATTERN, run_id=stream.run_id)
        assert swept["server"]["cached"] is False
        assert swept["result"]["matched_output_ids"] == []
