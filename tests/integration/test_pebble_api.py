"""Integration tests for the PebbleSession API wrapper (Fig. 5)."""

import pytest

from repro.errors import CaptureDisabledError
from repro.pebble.api import CapturedExecution, PebbleSession
from repro.pebble.query import query_provenance
from repro.workloads.scenarios import (
    RUNNING_EXAMPLE_PATTERN,
    build_running_example,
)
from repro.core.treepattern.pattern import TreePattern, child, descendant


class TestPebbleSession:
    def test_run_captures(self, pebble, example_tweets):
        pipeline = build_running_example(pebble.session, example_tweets)
        captured = pebble.run(pipeline)
        assert isinstance(captured, CapturedExecution)
        assert len(captured.items()) == 3
        assert all(isinstance(pid, int) for pid, _ in captured.rows())

    def test_run_plain_has_no_store(self, pebble, example_tweets):
        pipeline = build_running_example(pebble.session, example_tweets)
        execution = pebble.run_plain(pipeline)
        assert execution.store is None
        with pytest.raises(CaptureDisabledError):
            query_provenance(execution, RUNNING_EXAMPLE_PATTERN)

    def test_captured_execution_requires_store(self, pebble, example_tweets):
        pipeline = build_running_example(pebble.session, example_tweets)
        with pytest.raises(CaptureDisabledError):
            CapturedExecution(pipeline.execute(capture=False))

    def test_backtrace_accepts_text_pattern(self, pebble, example_tweets):
        pipeline = build_running_example(pebble.session, example_tweets)
        captured = pebble.run(pipeline)
        provenance = captured.backtrace(RUNNING_EXAMPLE_PATTERN)
        assert provenance.all_ids()["tweets.json"] == [2, 3]

    def test_backtrace_accepts_pattern_object(self, pebble, example_tweets):
        pipeline = build_running_example(pebble.session, example_tweets)
        captured = pebble.run(pipeline)
        pattern = TreePattern.root(
            descendant("id_str", equals="lp"),
            child("tweets", child("text", equals="Hello World", count=(2, 2))),
        )
        provenance = captured.backtrace(pattern)
        assert provenance.all_ids()["tweets.json"] == [2, 3]

    def test_match_phase_alone(self, pebble, example_tweets):
        pipeline = build_running_example(pebble.session, example_tweets)
        captured = pebble.run(pipeline)
        matches = captured.match(RUNNING_EXAMPLE_PATTERN)
        assert len(matches) == 1

    def test_size_report(self, pebble, example_tweets):
        pipeline = build_running_example(pebble.session, example_tweets)
        captured = pebble.run(pipeline)
        report = captured.size_report()
        assert report.lineage_bytes > 0
        assert report.structural_bytes > 0

    def test_read_jsonl_roundtrip(self, tmp_path):
        from repro.nested.json_io import write_jsonl
        from repro.nested.values import DataItem

        path = tmp_path / "tweets.jsonl"
        write_jsonl(path, [DataItem(text="hello", n=1)])
        pebble = PebbleSession(num_partitions=2)
        ds = pebble.read_jsonl(path)
        captured = pebble.run(ds.select("text"))
        provenance = captured.backtrace('root{/text="hello"}')
        assert provenance.sources[0].ids() == [1]

    def test_repeated_queries_on_one_capture(self, pebble, example_tweets):
        """Holistic capture pays once; many questions can follow (Sec. 1)."""
        pipeline = build_running_example(pebble.session, example_tweets)
        captured = pebble.run(pipeline)
        first = captured.backtrace(RUNNING_EXAMPLE_PATTERN)
        second = captured.backtrace('root{//id_str="jm"}')
        third = captured.backtrace(RUNNING_EXAMPLE_PATTERN)
        assert first.all_ids() == third.all_ids()
        assert second.all_ids() != first.all_ids()
