"""Cross-validation: lightweight capture vs. the full model (Sec. 4.3 vs 5.1).

The lightweight operator provenance is an *optimisation* of the full model:
identifiers instead of items, schema-level paths instead of value-level
paths.  These tests execute the same plans under both and check that no
information the paper relies on is lost:

* the source-to-result item relation (lineage) agrees,
* the value-level accesses of the full model collapse exactly to the
  lightweight ``A``, and
* the value-level mappings collapse exactly to the lightweight ``M``.
"""

import pytest

from repro.baselines.lineage import LineageQuerier
from repro.core.model import FullModelInterpreter, OperatorResult
from repro.core.operator_provenance import UNDEFINED
from repro.engine.plan import PlanNode, ReadNode
from repro.engine.session import Session
from repro.nested.values import Bag, DataItem, NestedSet
from repro.workloads.scenarios import (
    RUNNING_EXAMPLE_TWEETS,
    build_running_example,
    load_workload,
    scenario,
)


def _canonical(value) -> str:
    """Repr with nested bag/set contents sorted.

    Collection *order* is engine-defined (shuffle arrival vs. nested-loop
    order); the cross-validation compares contents.
    """
    if isinstance(value, DataItem):
        inner = ", ".join(f"{name}: {_canonical(val)}" for name, val in value.pairs())
        return f"<{inner}>"
    if isinstance(value, (Bag, NestedSet)):
        return "{" + ", ".join(sorted(_canonical(element) for element in value)) + "}"
    return repr(value)


def _full_source_lineage(
    results: dict[int, OperatorResult], root: PlanNode
) -> list[tuple[str, frozenset[tuple[str, str]]]]:
    """Per final item: (item repr, set of (source name, input item repr)).

    Traces the full model's per-operator I entries transitively down to the
    read operators; items are linked by object identity, which the
    interpreter preserves along the plan.
    """
    nodes = {node.oid: node for node in root.walk()}
    provenance_by_object: dict[int, dict[int, object]] = {}
    for oid, result in results.items():
        provenance_by_object[oid] = {id(entry.item): entry for entry in result.entries}

    def trace(oid: int, item: object) -> frozenset[tuple[str, str]]:
        node = nodes[oid]
        if isinstance(node, ReadNode):
            return frozenset({(node.name, repr(item))})
        entry = provenance_by_object[oid][id(item)]
        sources: set[tuple[str, str]] = set()
        for input_provenance in entry.inputs:
            child_oid = node.children[input_provenance.input_index].oid
            sources |= trace(child_oid, input_provenance.item)
        return frozenset(sources)

    final = results[root.oid]
    return sorted(
        (_canonical(entry.item), trace(root.oid, entry.item)) for entry in final.entries
    )


def _lightweight_source_lineage(execution) -> list[tuple[str, frozenset[tuple[str, str]]]]:
    """The same relation derived from the lightweight capture."""
    querier = LineageQuerier(execution.store)
    rows = execution.rows()
    traced = []
    for pid, item in rows:
        sources = querier.backtrace_ids(execution.root.oid, {pid})
        source_items: set[tuple[str, str]] = set()
        for source in sources:
            for item_id in source.ids:
                source_items.add(
                    (source.name, repr(execution.store.source_item(source.oid, item_id)))
                )
        traced.append((_canonical(item), frozenset(source_items)))
    return sorted(traced)


def _plans():
    session = Session(2)
    yield "running-example", build_running_example(
        session, list(RUNNING_EXAMPLE_TWEETS)
    )
    for name in ("T1", "T5", "D1", "D4", "D5"):
        spec = scenario(name)
        data = load_workload(spec.kind, 0.1)
        yield name, spec.build(Session(2), data)


@pytest.mark.parametrize("name,dataset", list(_plans()), ids=lambda value: value if isinstance(value, str) else "")
class TestCrossValidation:
    def test_results_agree(self, name, dataset):
        full = FullModelInterpreter().run(dataset.plan)
        execution = dataset.execute(capture=True)
        assert sorted(map(_canonical, full[dataset.plan.oid].items())) == sorted(
            map(_canonical, execution.items())
        )

    def test_source_lineage_agrees(self, name, dataset):
        full = FullModelInterpreter().run(dataset.plan)
        execution = dataset.execute(capture=True)
        assert _full_source_lineage(full, dataset.plan) == _lightweight_source_lineage(
            execution
        )

    def test_accesses_collapse_to_lightweight_A(self, name, dataset):
        full = FullModelInterpreter().run(dataset.plan)
        execution = dataset.execute(capture=True)
        for node in dataset.plan.walk():
            lightweight = execution.store.get(node.oid)
            for input_index, input_ref in enumerate(lightweight.inputs):
                if input_ref.accessed is UNDEFINED:
                    continue
                full_accessed = full[node.oid].schema_level_accesses(input_index)
                # The full model records accesses per item; items never
                # reached (e.g. filtered out) contribute nothing, so the
                # collapse is a subset of (and usually equal to) the
                # schema-level A.
                assert full_accessed <= set(input_ref.accessed), (
                    f"{name}: operator {node.oid} input {input_index}"
                )
                if full[node.oid].entries:
                    assert full_accessed == set(input_ref.accessed)

    def test_mappings_collapse_to_lightweight_M(self, name, dataset):
        full = FullModelInterpreter().run(dataset.plan)
        execution = dataset.execute(capture=True)
        for node in dataset.plan.walk():
            lightweight = execution.store.get(node.oid)
            if lightweight.manipulations_undefined():
                # Map: both sides must agree that M is unknown.
                assert all(
                    entry.mappings is UNDEFINED for entry in full[node.oid].entries
                )
                continue
            if not full[node.oid].entries:
                continue
            full_mappings = full[node.oid].schema_level_mappings()
            lightweight_mappings = {
                (path_in.with_placeholders(), path_out.with_placeholders())
                for path_in, path_out in lightweight.manipulations_or_empty()
            }
            assert full_mappings == lightweight_mappings, f"{name}: operator {node.oid}"
