"""A serve fleet behind the router, end to end over real HTTP sockets.

Three thread-mode workers mount one sharded warehouse; a
:class:`RouterService` in front consistent-hashes queries to owners and
scatter-gathers the cross-run endpoints.  The invariant pinned throughout:
**the fleet is an implementation detail** -- every answer fetched through
the router is byte-identical to a direct library call and to a
``repro.connect("file://...")`` client over the same root, including audit
digests.  Alongside that, the /v1 surface itself: the uniform envelope,
stable error codes, and the ``Deprecation`` headers on legacy routes.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

import repro
from repro.cli import main as cli_main
from repro.client import LocalClient, ProvenanceClient, RemoteClient
from repro.engine.scheduler import RetryPolicy
from repro.engine.session import Session
from repro.errors import ProvenanceError, ReproError
from repro.obs.metrics import MetricsRegistry
from repro.pebble.query import query_provenance
from repro.serve import ProvenanceServer, QueryService, ServeConfig, result_to_json
from repro.serve.fleet import Fleet
from repro.serve.router import RouterService, RouterServer
from repro.warehouse import Warehouse
from repro.workloads.scenarios import (
    RUNNING_EXAMPLE_PATTERN,
    RUNNING_EXAMPLE_TWEETS,
    build_running_example,
)

SUBJECTS = ["lp", "nobody-xyz"]
FLEET_SIZE = 3


def _canon(payload) -> str:
    return json.dumps(payload, sort_keys=True)


def _get(url: str):
    """Raw GET returning (status, headers, parsed body) -- no client sugar."""
    try:
        with urllib.request.urlopen(url, timeout=30) as response:
            return response.status, dict(response.headers), json.loads(
                response.read()
            )
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), json.loads(error.read())


def _post(url: str, payload: dict):
    data = json.dumps(payload).encode()
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, dict(response.headers), json.loads(
                response.read()
            )
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), json.loads(error.read())


@pytest.fixture(scope="module")
def fleet_setup(tmp_path_factory):
    """Two recorded runs in a sharded warehouse, served by a 3-worker fleet.

    Module-scoped: the read-only tests below share one fleet; the single
    mutation test (recording a third run) runs last in this file.
    """
    root = tmp_path_factory.mktemp("fleet") / "wh"
    captured = build_running_example(
        Session(num_partitions=2), [dict(t) for t in RUNNING_EXAMPLE_TWEETS]
    ).execute(capture=True)
    warehouse = Warehouse.open(root)
    warehouse.init_shards(2)
    run_ids = [
        warehouse.record(captured, name=f"example-{index}").run_id
        for index in range(2)
    ]
    with Fleet(root, size=FLEET_SIZE, mode="thread") as fleet:
        router = RouterService(fleet.workers())
        with RouterServer(router) as server:
            yield server, router, fleet, root, run_ids


@pytest.fixture(scope="module")
def remote(fleet_setup):
    server, _, _, _, _ = fleet_setup
    return repro.connect(server.url)


@pytest.fixture(scope="module")
def local(fleet_setup):
    _, _, _, root, _ = fleet_setup
    client = repro.connect(f"file://{root}")
    yield client
    client.close()


class TestScatterGather:
    def test_runs_unions_every_worker(self, remote, fleet_setup):
        _, _, _, _, run_ids = fleet_setup
        assert [run["run_id"] for run in remote.runs()] == run_ids

    def test_fleet_topology_spreads_runs_over_workers(self, fleet_setup):
        server, _, _, _, run_ids = fleet_setup
        status, _, body = _get(server.url + "/v1/fleet")
        assert status == 200 and body["ok"] is True
        topology = body["data"]
        names = [worker["name"] for worker in topology["workers"]]
        assert len(names) == FLEET_SIZE
        assert set(topology["assignments"]) == set(run_ids)
        assert all(owner in names for owner in topology["assignments"].values())

    def test_health_reports_every_worker(self, fleet_setup):
        server, _, _, _, _ = fleet_setup
        status, _, body = _get(server.url + "/v1/healthz")
        assert status == 200
        health = body["data"]
        assert health["status"] == "ok"
        assert len(health["workers"]) == FLEET_SIZE
        assert all(entry["status"] == "ok" for entry in health["workers"].values())


class TestByteIdentity:
    """Fleet answers == direct library answers == local client answers."""

    def test_backtrace_identical_across_all_three_tiers(
        self, remote, local, fleet_setup
    ):
        _, _, _, root, run_ids = fleet_setup
        warehouse = Warehouse.open(root)
        for run_id in run_ids:
            direct = result_to_json(
                query_provenance(warehouse.load(run_id), RUNNING_EXAMPLE_PATTERN)
            )
            via_router = remote.backtrace(RUNNING_EXAMPLE_PATTERN, run=run_id)
            via_local = local.backtrace(RUNNING_EXAMPLE_PATTERN, run=run_id)
            assert _canon(via_router["result"]) == _canon(direct)
            assert _canon(via_local["result"]) == _canon(direct)

    def test_forward_identical(self, remote, local, fleet_setup):
        _, _, _, _, run_ids = fleet_setup
        pattern = 'root{//id_str="lp"}'
        for run_id in run_ids:
            assert _canon(
                remote.forward(pattern, run=run_id)["result"]
            ) == _canon(local.forward(pattern, run=run_id)["result"])

    def test_sar_report_identical(self, remote, local):
        via_router = remote.sar(SUBJECTS)
        via_local = local.sar(SUBJECTS)
        assert _canon(via_router["report"]) == _canon(via_local["report"])
        # Two runs in scope: the scatter-gather merge rebuilt the counts.
        assert via_router["report"]["subjects"][0]["run_count"] == 2

    def test_erasure_digest_identical(self, remote, local, fleet_setup):
        _, _, _, root, _ = fleet_setup
        via_router = remote.verify_erasure(SUBJECTS)
        via_local = local.verify_erasure(SUBJECTS)
        assert _canon(via_router["report"]) == _canon(via_local["report"])
        assert via_router["report"]["digest"] == via_local["report"]["digest"]
        assert via_router["report"]["clean"] is False  # "lp" leaves residue


class TestAggregatedStats:
    def test_serve_counters_sum_across_workers(self, remote, fleet_setup):
        server, _, fleet, _, run_ids = fleet_setup
        for run_id in run_ids:  # touch owners of both runs
            remote.backtrace(RUNNING_EXAMPLE_PATTERN, run=run_id)
        total = 0
        for _, worker_url in fleet.workers():
            with urllib.request.urlopen(worker_url + "/metrics", timeout=30) as r:
                text = r.read().decode()
            for line in text.splitlines():
                if line.startswith("repro_serve_queries_total{"):
                    total += int(float(line.rsplit(" ", 1)[1]))
        _, _, body = _get(server.url + "/v1/stats")
        summed = sum(
            metric["value"]
            for metric in body["data"]["metrics"]
            if metric["name"] == "repro_serve_queries_total"
        )
        assert summed == total
        assert total >= len(run_ids)

    def test_cli_stats_remote_hits_the_router(self, fleet_setup, capsys):
        server, _, _, _, _ = fleet_setup
        assert cli_main(["stats", "--remote", server.url, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = {metric["name"] for metric in payload["metrics"]}
        assert "repro_serve_queries_total" in names

    def test_prometheus_text_over_legacy_route(self, fleet_setup, capsys):
        server, _, _, _, _ = fleet_setup
        assert cli_main(["stats", "--remote", server.url]) == 0
        text = capsys.readouterr().out
        assert "repro_serve_queries_total" in text


class TestEnvelope:
    def test_success_envelope_is_ok_plus_data(self, fleet_setup):
        server, _, _, _, _ = fleet_setup
        status, _, body = _get(server.url + "/v1/runs")
        assert status == 200
        assert set(body) == {"ok", "data"}
        assert body["ok"] is True

    def test_unknown_run_is_not_found_code(self, fleet_setup):
        server, _, _, _, _ = fleet_setup
        status, _, body = _get(server.url + "/v1/runs/no-such-run")
        assert status == 404
        assert body["ok"] is False
        assert body["error"]["code"] == "not_found"
        assert body["error"]["retryable"] is False
        assert "no-such-run" in body["error"]["message"]

    def test_bad_pattern_is_bad_pattern_code(self, fleet_setup):
        server, _, _, _, _ = fleet_setup
        status, _, body = _post(
            server.url + "/v1/query", {"pattern": "root{"}
        )
        assert status == 400
        assert body["error"]["code"] == "bad_pattern"

    def test_admission_rejection_envelope(self, captured_example, tmp_path):
        """A saturated worker answers 429 with a retryable stable code."""
        root = tmp_path / "wh"
        Warehouse.open(root).record(captured_example, name="example")
        service = QueryService.open(
            ServeConfig(
                root=str(root), port=0, workers=1, queue_limit=0, deadline=None
            ),
            registry=MetricsRegistry(),
        )
        release, entered = threading.Event(), threading.Event()

        def hold():
            entered.set()
            release.wait(10)

        service.query_hook = hold
        with ProvenanceServer(service, port=0) as server:
            client = RemoteClient(server.url, policy=RetryPolicy(max_retries=0))
            blocker = threading.Thread(
                target=lambda: client.backtrace(RUNNING_EXAMPLE_PATTERN)
            )
            blocker.start()
            try:
                assert entered.wait(5)
                status, _, body = _post(
                    server.url + "/v1/query", {"pattern": 'root{//name="vx"}'}
                )
            finally:
                release.set()
                blocker.join()
        assert status == 429
        assert body["ok"] is False
        assert body["error"]["code"] == "admission_full"
        assert body["error"]["retryable"] is True

    def test_legacy_routes_carry_deprecation_headers(self, fleet_setup):
        _, _, fleet, _, _ = fleet_setup
        _, worker_url = fleet.workers()[0]
        status, headers, _ = _get(worker_url + "/runs")
        assert status == 200
        assert headers.get("Deprecation") == "true"
        assert 'rel="successor-version"' in headers.get("Link", "")
        assert "/v1/runs" in headers.get("Link", "")
        status, headers, _ = _get(worker_url + "/v1/runs")
        assert status == 200
        assert "Deprecation" not in headers


class TestConnectFacade:
    def test_both_transports_satisfy_the_protocol(self, remote, local):
        assert isinstance(remote, RemoteClient)
        assert isinstance(local, LocalClient)
        assert isinstance(remote, ProvenanceClient)
        assert isinstance(local, ProvenanceClient)

    def test_bare_path_is_local(self, fleet_setup):
        _, _, _, root, run_ids = fleet_setup
        with repro.connect(str(root)) as client:
            assert [run["run_id"] for run in client.runs()] == run_ids

    def test_unsupported_scheme_is_rejected(self):
        with pytest.raises(ReproError, match="unsupported connect scheme"):
            repro.connect("ftp://example.com/warehouse")
        with pytest.raises(ReproError):
            repro.connect("")

    def test_unknown_run_raises_the_same_error_both_ways(self, remote, local):
        for client in (remote, local):
            with pytest.raises(ProvenanceError, match="no run"):
                client.backtrace(RUNNING_EXAMPLE_PATTERN, run="run-9999-nope")

    def test_serveclient_attribute_warns_deprecation(self):
        with pytest.warns(DeprecationWarning, match="repro.connect"):
            repro.ServeClient  # noqa: B018 (the access itself is the test)


class TestFreshRuns:
    """Mutations last: the module-scoped fleet sees catalog growth."""

    def test_router_serves_a_run_recorded_after_startup(
        self, remote, fleet_setup, captured_example
    ):
        server, _, _, root, run_ids = fleet_setup
        record = Warehouse.open(root).record(captured_example, name="late")
        listed = [run["run_id"] for run in remote.runs()]
        assert listed == run_ids + [record.run_id]
        # run=None resolves to the newest run through the refreshed catalog.
        newest = remote.backtrace(RUNNING_EXAMPLE_PATTERN)
        pinned = remote.backtrace(RUNNING_EXAMPLE_PATTERN, run=record.run_id)
        assert _canon(newest["result"]) == _canon(pinned["result"])
