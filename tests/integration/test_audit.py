"""The GDPR audit subsystem end to end: CLI, warehouse, bench, scenario.

Record a run through the public CLI, backfill its index, then drive the
full audit surface -- ``trace-forward``, ``audit sar``, ``audit erasure``,
``bench audit`` -- and pin the cross-cutting guarantees: indexed answers
byte-equal scans, SAR pages partition the subjects, erasure digests
reproduce, and the registered G1 scenario actually exercises the
forward-trace workload it documents.
"""

from __future__ import annotations

import json

import pytest

from repro.audit import subject_access_request, trace_forward, verify_erasure
from repro.cli import main
from repro.warehouse import Warehouse
from repro.workloads.scenarios import scenario


@pytest.fixture
def recorded_root(tmp_path, capsys):
    """The running example recorded via the CLI, without an index."""
    root = str(tmp_path / "wh")
    assert main(["warehouse", "record", "example", "--root", root, "--no-index"]) == 0
    capsys.readouterr()
    return root


class TestIndexCli:
    def test_build_then_info(self, recorded_root, capsys):
        assert main(["index", "info", "--root", recorded_root]) == 0
        assert "not indexed" in capsys.readouterr().out
        assert main(["index", "build", "--root", recorded_root]) == 0
        built = capsys.readouterr().out
        assert "input ids" in built
        assert main(["index", "info", "--root", recorded_root]) == 0
        line = capsys.readouterr().out.strip()
        summary = json.loads(line.split(": ", 1)[1])
        assert summary["inputs"] > 0 and summary["terms"] > 0

    def test_index_segment_lands_next_to_the_run(self, recorded_root):
        from repro.warehouse.index import INDEX_SEGMENT

        warehouse = Warehouse.open(recorded_root)
        record = warehouse.resolve()
        assert not (warehouse.run_dir(record.run_id) / INDEX_SEGMENT).exists()
        assert main(["index", "build", "--root", recorded_root]) == 0
        assert (warehouse.run_dir(record.run_id) / INDEX_SEGMENT).exists()
        assert Warehouse.open(recorded_root).resolve().indexed


class TestTraceForwardCli:
    def test_json_answer_matches_library(self, recorded_root, capsys):
        assert main(["index", "build", "--root", recorded_root]) == 0
        capsys.readouterr()
        code = main(
            [
                "trace-forward",
                "--pattern",
                'root{//id_str="lp"}',
                "--root",
                recorded_root,
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        direct = trace_forward(Warehouse.open(recorded_root), 'root{//id_str="lp"}')
        assert payload == direct.to_json()
        assert payload["output_count"] > 0

    def test_no_index_flag_scans_identically(self, recorded_root, capsys):
        assert main(["index", "build", "--root", recorded_root]) == 0
        capsys.readouterr()
        pattern = 'root{//id_str="lp"}'
        base = ["trace-forward", "--pattern", pattern, "--root", recorded_root, "--json"]
        assert main(base) == 0
        indexed = json.loads(capsys.readouterr().out)
        assert main(base + ["--no-index"]) == 0
        scanned = json.loads(capsys.readouterr().out)
        assert indexed == scanned


class TestAuditCli:
    def test_sar_report_and_pagination(self, recorded_root, tmp_path, capsys):
        report_path = tmp_path / "sar.json"
        code = main(
            [
                "audit",
                "sar",
                "lp",
                "Lisa Paul",
                "nobody-xyz",
                "--root",
                recorded_root,
                "--page-size",
                "2",
                "--report",
                str(report_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "page 1/2" in out
        report = json.loads(report_path.read_text())
        assert report["pages"] == 2 and report["total_subjects"] == 3
        library = subject_access_request(
            Warehouse.open(recorded_root), ["lp", "Lisa Paul", "nobody-xyz"],
            page_size=2,
        )
        assert report == library

    def test_subjects_file_feeds_the_request(self, recorded_root, tmp_path, capsys):
        subjects = tmp_path / "subjects.txt"
        subjects.write_text("lp\n\nnobody-xyz\n")
        code = main(
            ["audit", "sar", "--subjects-file", str(subjects), "--root", recorded_root]
        )
        assert code == 0
        assert "lp" in capsys.readouterr().out

    def test_erasure_verdicts_and_exit_codes(self, recorded_root, capsys):
        dirty = main(["audit", "erasure", "lp", "--root", recorded_root])
        assert dirty == 1
        out = capsys.readouterr().out
        assert "RESIDUALS FOUND" in out and "digest: sha256:" in out
        clean = main(["audit", "erasure", "nobody-xyz", "--root", recorded_root])
        assert clean == 0
        assert "CLEAN" in capsys.readouterr().out

    def test_erasure_digest_reproduces(self, recorded_root):
        warehouse = Warehouse.open(recorded_root)
        first = verify_erasure(warehouse, ["lp", "nobody-xyz"])
        second = verify_erasure(Warehouse.open(recorded_root), ["lp", "nobody-xyz"])
        assert first["digest"] == second["digest"]


class TestBenchAudit:
    def test_report_compares_indexed_against_scan(self, tmp_path, capsys):
        report_path = tmp_path / "audit_bench.json"
        code = main(
            [
                "bench",
                "audit",
                "--scenarios",
                "T1",
                "--scale",
                "0.05",
                "--subjects",
                "8",
                "--subject-pool",
                "10",
                "--report",
                str(report_path),
            ]
        )
        capsys.readouterr()
        report = json.loads(report_path.read_text())
        entry = report["scenarios"][0]
        assert entry["scenario"] == "T1"
        assert entry["answers_identical"] is True
        for side in ("indexed", "scan"):
            stats = entry[side]
            assert stats["probes"] == 8
            assert {"p50_ms", "p95_ms", "p99_ms", "wall_seconds"} <= set(stats)
            assert {"hits", "misses", "bytes_read"} <= set(stats["cache"])
        assert report_path.with_suffix(".txt").exists()
        # Exit code 1 is reserved for "index was not faster"; either way the
        # report is complete, so only failure *with* a missing report is a bug.
        assert code in (0, 1)


class TestGdprScenario:
    def test_g1_forward_workload(self, tmp_path):
        spec = scenario("G1")
        execution = spec.instantiate(0.2, num_partitions=2).execute(capture=True)
        warehouse = Warehouse.open(tmp_path / "wh")
        warehouse.record(execution, name="gdpr")
        result = trace_forward(warehouse, spec.pattern)
        assert result.matched_input_count > 0
        assert result.output_ids, "G1's subject must reach at least one output"
