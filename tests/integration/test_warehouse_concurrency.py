"""Warehouse readers racing a concurrent writer.

``record`` writes the run directory (segments, metrics, index) *before*
the catalog entry that makes it visible, so a reader that refreshes while
a write is in flight must either not see the new run yet or see it fully
loadable and queryable -- never a partially written directory.  These
tests drive that window hard: reader threads loop ``refresh()`` /
``resolve()`` / ``load()`` / query while a writer keeps recording into
the same root, and every answer must match the single-threaded baseline.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.pebble.query import query_provenance
from repro.serve.service import result_to_json
from repro.warehouse import Warehouse
from repro.workloads.scenarios import RUNNING_EXAMPLE_PATTERN

FORWARD_PATTERN = 'root{//id_str="lp"}'


@pytest.fixture
def seeded_root(captured_example, tmp_path):
    root = tmp_path / "wh"
    Warehouse.open(root).record(captured_example, name="seed")
    return root


class TestRefreshRace:
    def test_refresh_never_serves_a_partial_run(self, captured_example, seeded_root):
        baseline_wh = Warehouse.open(seeded_root)
        baseline = json.dumps(
            result_to_json(
                query_provenance(baseline_wh.load(), RUNNING_EXAMPLE_PATTERN)
            ),
            sort_keys=True,
        )
        forward_baseline = baseline_wh.forward(
            None, FORWARD_PATTERN
        ).output_ids

        extra_runs = 6
        stop = threading.Event()
        errors: list[BaseException] = []
        lock = threading.Lock()

        def writer():
            try:
                for i in range(extra_runs):
                    Warehouse.open(seeded_root).record(
                        captured_example, name=f"race-{i}"
                    )
            except BaseException as exc:  # noqa: BLE001 -- collected for assert
                with lock:
                    errors.append(exc)
            finally:
                stop.set()

        def reader():
            warehouse = Warehouse.open(seeded_root)
            try:
                while True:
                    final = stop.is_set()
                    warehouse.refresh()
                    for record in warehouse.runs():
                        execution = warehouse.load(record.run_id)
                        report = execution.store.size_report()
                        if len(report.per_operator) != record.operator_count:
                            raise AssertionError(
                                f"{record.run_id}: partial run served: "
                                f"{len(report.per_operator)} of "
                                f"{record.operator_count} operators"
                            )
                        answer = json.dumps(
                            result_to_json(
                                query_provenance(execution, RUNNING_EXAMPLE_PATTERN)
                            ),
                            sort_keys=True,
                        )
                        if answer != baseline:
                            raise AssertionError(
                                f"{record.run_id}: divergent backtrace answer"
                            )
                        forward = warehouse.forward(record.run_id, FORWARD_PATTERN)
                        if forward.output_ids != forward_baseline:
                            raise AssertionError(
                                f"{record.run_id}: divergent forward answer"
                            )
                    if final:
                        break  # one full sweep after the writer finished
            except BaseException as exc:  # noqa: BLE001 -- collected for assert
                with lock:
                    errors.append(exc)

        writer_thread = threading.Thread(target=writer)
        reader_threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in reader_threads:
            thread.start()
        writer_thread.start()
        writer_thread.join()
        for thread in reader_threads:
            thread.join()

        assert errors == []
        fresh = Warehouse.open(seeded_root)
        assert len(fresh.runs()) == 1 + extra_runs
        assert all(record.indexed for record in fresh.runs())

    def test_resolve_newest_moves_monotonically(self, captured_example, seeded_root):
        """resolve(None) under refresh never goes backwards in creation order."""
        warehouse = Warehouse.open(seeded_root)
        stop = threading.Event()
        errors: list[BaseException] = []

        def writer():
            try:
                for i in range(5):
                    Warehouse.open(seeded_root).record(
                        captured_example, name=f"mono-{i}"
                    )
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)
            finally:
                stop.set()

        seen: list[str] = []

        def reader():
            try:
                while not stop.is_set():
                    warehouse.refresh()
                    newest = warehouse.resolve()
                    if not seen or seen[-1] != newest.run_id:
                        seen.append(newest.run_id)
                    # The newest run must always be fully loadable.
                    warehouse.load(newest.run_id)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        writer_thread = threading.Thread(target=writer)
        reader_thread = threading.Thread(target=reader)
        reader_thread.start()
        writer_thread.start()
        writer_thread.join()
        reader_thread.join()

        assert errors == []
        # Run ids are numbered in creation order; visibility is append-only.
        assert seen == sorted(seen)
