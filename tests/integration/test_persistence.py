"""Integration tests for provenance persistence (capture once, query later)."""

import pytest

from repro.errors import ProvenanceError
from repro.pebble.api import CapturedExecution
from repro.pebble.persistence import load_execution, save_execution
from repro.workloads.scenarios import (
    RUNNING_EXAMPLE_PATTERN,
    build_running_example,
    load_workload,
    scenario,
)


class TestSaveLoadRoundtrip:
    def test_running_example_queries_agree(self, pebble, example_tweets, tmp_path):
        pipeline = build_running_example(pebble.session, example_tweets)
        captured = pebble.run(pipeline)
        before = captured.backtrace(RUNNING_EXAMPLE_PATTERN)

        path = tmp_path / "capture.json"
        captured.save(path)
        restored = CapturedExecution.load(path, num_partitions=2)
        after = restored.backtrace(RUNNING_EXAMPLE_PATTERN)

        assert after.all_ids() == before.all_ids()
        assert after.sources[0].entries[0].tree.render() == (
            before.sources[0].entries[0].tree.render()
        )

    def test_rows_and_sizes_preserved(self, pebble, example_tweets, tmp_path):
        pipeline = build_running_example(pebble.session, example_tweets)
        captured = pebble.run(pipeline)
        path = tmp_path / "capture.json"
        captured.save(path)
        restored = CapturedExecution.load(path)
        assert sorted(map(repr, restored.items())) == sorted(map(repr, captured.items()))
        assert restored.size_report().lineage_bytes == captured.size_report().lineage_bytes
        assert (
            restored.size_report().structural_bytes
            == captured.size_report().structural_bytes
        )

    @pytest.mark.parametrize("name", ["T1", "D4", "D5"])
    def test_scenarios_roundtrip(self, name, tmp_path):
        from repro.engine.session import Session

        spec = scenario(name)
        data = load_workload(spec.kind, 0.1)
        execution = spec.build(Session(2), data).execute(capture=True)
        from repro.pebble.query import query_provenance

        before = query_provenance(execution, spec.pattern)
        path = tmp_path / "capture.json"
        save_execution(execution, path)
        restored = load_execution(path, num_partitions=2)
        after = query_provenance(restored, spec.pattern)
        assert after.all_ids() == before.all_ids()

    def test_plain_execution_rejected(self, pebble, example_tweets, tmp_path):
        pipeline = build_running_example(pebble.session, example_tweets)
        execution = pebble.run_plain(pipeline)
        with pytest.raises(ProvenanceError):
            save_execution(execution, tmp_path / "x.json")

    def test_unknown_format_rejected(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text('{"format": 99}')
        with pytest.raises(ProvenanceError, match="unsupported"):
            load_execution(path)
