"""End-to-end integration of all ten evaluation scenarios (Tab. 7)."""

import pytest

from repro.baselines.lazy import LazyProvenanceQuerier
from repro.baselines.lineage import LineageQuerier
from repro.engine.session import Session
from repro.pebble.query import query_provenance
from repro.workloads.scenarios import SCENARIOS, load_workload, scenario

SCALE = 0.2


@pytest.fixture(scope="module")
def captured():
    """One captured execution per scenario (module-scoped: they are costly)."""
    executions = {}
    for name, spec in SCENARIOS.items():
        data = load_workload(spec.kind, SCALE)
        executions[name] = spec.build(Session(2), data).execute(capture=True)
    return executions


@pytest.mark.parametrize("name", sorted(SCENARIOS))
class TestStructuralQueries:
    def test_query_yields_provenance(self, captured, name):
        spec = scenario(name)
        provenance = query_provenance(captured[name], spec.pattern)
        total = sum(len(source) for source in provenance.sources)
        assert total > 0, f"{name}: empty provenance"

    def test_provenance_items_resolve_to_inputs(self, captured, name):
        spec = scenario(name)
        provenance = query_provenance(captured[name], spec.pattern)
        data = load_workload(spec.kind, SCALE)
        if spec.kind == "twitter":
            universe = {repr(item) for item in data}
        else:
            universe = {repr(item) for records in data.values() for item in records}
        for source in provenance.sources:
            for entry in source:
                assert repr(entry.item) in universe

    def test_structural_ids_subset_of_lineage(self, captured, name):
        """Structural provenance never returns more top-level items than
        lineage -- it refines lineage (Sec. 2)."""
        spec = scenario(name)
        provenance = query_provenance(captured[name], spec.pattern)
        querier = LineageQuerier(captured[name].store)
        lineage = querier.backtrace_ids(
            captured[name].root.oid, set(provenance.matched_output_ids)
        )
        lineage_ids = set().union(*(source.ids for source in lineage)) if lineage else set()
        assert provenance.lineage_ids() <= lineage_ids

    def test_contributing_paths_exist_in_input_items(self, captured, name):
        """Every contributing path of a backtraced tree must address real
        data in the input item (no dangling provenance)."""
        from repro.core.paths import parse_path

        spec = scenario(name)
        provenance = query_provenance(captured[name], spec.pattern)
        for source in provenance.sources:
            for entry in source:
                for text in entry.contributing_paths():
                    path = parse_path(text.replace("[pos]", "[1]"))
                    assert path.resolves_in(entry.item), (
                        f"{name}: path {text} does not resolve in input {entry.item_id}"
                    )


@pytest.mark.parametrize("name", ["T3", "T5", "D1", "D3"])
class TestEagerLazyEquivalence:
    def test_same_provenance_ids(self, captured, name):
        spec = scenario(name)
        eager = query_provenance(captured[name], spec.pattern)
        data = load_workload(spec.kind, SCALE)
        lazy = LazyProvenanceQuerier(spec.build(Session(2), data)).query(spec.pattern)
        assert lazy.all_ids() == eager.all_ids()
