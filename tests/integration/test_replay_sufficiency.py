"""Replay sufficiency: the backtraced provenance reproduces the queried data.

The paper's central accuracy claim (Sec. 2): the dark-green (contributing)
items, together with the medium-green (influencing) values the operators
read, *suffice to reproduce* the queried result items.  These tests make
that operational: they reduce every input item to its backtracing tree (the
minimal witness), re-run the pipeline over only the witnesses, and check
that the provenance question still matches.
"""

from repro.engine.expressions import col, collect_list, struct_
from repro.engine.session import Session
from repro.core.treepattern.matcher import match_partitions
from repro.core.treepattern.parser import parse_pattern
from repro.pebble.query import query_provenance
from repro.workloads.scenarios import (
    RUNNING_EXAMPLE_PATTERN,
    RUNNING_EXAMPLE_TWEETS,
    build_running_example,
)


def _witnesses(provenance):
    """Reduced input items per source name."""
    by_source: dict[str, list] = {}
    for source in provenance.sources:
        by_source.setdefault(source.name, [])
        for entry in source:
            by_source[source.name].append(entry.reduced_item())
    return by_source


class TestRunningExampleReplay:
    def test_witnesses_are_strict_reductions(self, captured_example, example_pattern):
        provenance = query_provenance(captured_example, example_pattern)
        entry = provenance.sources[0].entry(2)
        witness = entry.reduced_item()
        # Only the green attributes of Tab. 1 survive.
        assert set(witness.attributes()) == {"text", "user", "retweet_count"}
        assert "user_mentions" not in witness

    def test_replay_reproduces_queried_items(self, captured_example, example_pattern):
        provenance = query_provenance(captured_example, example_pattern)
        witnesses = _witnesses(provenance)["tweets.json"]
        assert len(witnesses) == 2

        replay_session = Session(2)
        replay = build_running_example(replay_session, witnesses)
        execution = replay.execute(capture=True)
        matches = match_partitions(parse_pattern(example_pattern), execution.partitions)
        assert matches, "replay over the witnesses no longer satisfies the query"
        # The reproduced row holds exactly the duplicate Hello World texts.
        [match] = matches
        texts = [tweet["text"] for tweet in match.item["tweets"]]
        assert texts == ["Hello World", "Hello World"]


class TestFlattenReplay:
    def test_mention_witness_keeps_only_matched_position(self, session):
        data = [
            {
                "text": "hi",
                "user_mentions": [
                    {"id_str": "aa"},
                    {"id_str": "bb"},
                    {"id_str": "cc"},
                ],
            }
        ]
        ds = session.create_dataset(data, "in").flatten("user_mentions", "m_user")
        execution = ds.execute(capture=True)
        provenance = query_provenance(execution, 'root{/m_user{/id_str="bb"}}')
        entry = provenance.sources[0].entry(1)
        witness = entry.reduced_item()
        assert witness["user_mentions"].to_python() == [{"id_str": "bb"}]

        # Replaying the flatten over the witness still yields the match.
        replay = Session(2).create_dataset([witness], "in").flatten(
            "user_mentions", "m_user"
        )
        out = replay.collect()
        assert any(item["m_user"]["id_str"] == "bb" for item in out)


class TestAggregationReplay:
    def test_group_witnesses_rebuild_queried_collection(self):
        session = Session(2)
        data = [
            {"grp": "g", "tag": "x", "noise": 1},
            {"grp": "g", "tag": "y", "noise": 2},
            {"grp": "h", "tag": "z", "noise": 3},
        ]
        ds = (
            session.create_dataset(data, "in")
            .group_by(col("grp"))
            .agg(collect_list(col("tag")).alias("tags"))
        )
        execution = ds.execute(capture=True)
        provenance = query_provenance(execution, 'root{/grp="g", /tags="y"}')
        [source] = provenance.sources
        witnesses = [entry.reduced_item() for entry in source]
        # Only the y member is in the provenance; its witness drops noise.
        assert witnesses == [type(witnesses[0])(grp="g", tag="y")]

        replay = (
            Session(2)
            .create_dataset(witnesses, "in")
            .group_by(col("grp"))
            .agg(collect_list(col("tag")).alias("tags"))
        )
        [row] = replay.collect()
        assert list(row["tags"]) == ["y"]


class TestStructReplay:
    def test_struct_projection_witness(self, session):
        data = [{"user": {"id_str": "lp", "name": "Lisa", "bio": "x" * 100}, "extra": 1}]
        ds = session.create_dataset(data, "in").select(
            struct_(id_str=col("user.id_str")).alias("u")
        )
        execution = ds.execute(capture=True)
        provenance = query_provenance(execution, 'root{/u{/id_str="lp"}}')
        witness = provenance.sources[0].entry(1).reduced_item()
        assert witness.to_python() == {"user": {"id_str": "lp"}}
        replay = Session(1).create_dataset([witness], "in").select(
            struct_(id_str=col("user.id_str")).alias("u")
        )
        assert replay.collect()[0]["u"]["id_str"] == "lp"
