"""The provenance query service, end to end over a real HTTP socket.

Each test stands up a :class:`ProvenanceServer` on an ephemeral port over a
freshly recorded warehouse, with its own :class:`MetricsRegistry` so request
accounting is assertable per test.  The core guarantee pinned here: answers
served concurrently through the HTTP + pool + cache stack are byte-identical
to a direct ``query_provenance`` over ``Warehouse.load``.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.cli import main as cli_main
from repro.engine.scheduler import RetryPolicy
from repro.errors import AdmissionError, TaskTimeoutError
from repro.obs.metrics import MetricsRegistry
from repro.pebble.query import query_provenance
from repro.serve import (
    ProvenanceServer,
    QueryService,
    ServeClient,
    ServeConfig,
    result_to_json,
)
from repro.warehouse import Warehouse
from repro.workloads.scenarios import RUNNING_EXAMPLE_PATTERN

NO_BACKOFF = RetryPolicy(max_retries=2, backoff=0.0)


@pytest.fixture
def recorded(captured_example, tmp_path):
    """The running example recorded into a warehouse; returns (root, run_id)."""
    root = tmp_path / "wh"
    record = Warehouse.open(root).record(captured_example, name="example")
    return root, record.run_id


@pytest.fixture
def served(recorded):
    """A live server over the recorded warehouse; yields (server, service, root)."""
    root, _ = recorded
    service = QueryService.open(
        ServeConfig(root=str(root), port=0), registry=MetricsRegistry()
    )
    with ProvenanceServer(service, port=0) as server:
        yield server, service, root


@pytest.fixture
def client(served):
    server, _, _ = served
    return ServeClient(server.url, policy=NO_BACKOFF)


class TestEndpoints:
    def test_healthz_reports_capacity(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["runs"] == 1
        assert health["workers"] == 4

    def test_runs_lists_the_catalog(self, client, recorded):
        _, run_id = recorded
        runs = client.runs()
        assert [run["run_id"] for run in runs] == [run_id]

    def test_run_detail_includes_manifest_and_metrics(self, client, recorded):
        _, run_id = recorded
        detail = client.run(run_id)
        assert detail["run_id"] == run_id
        assert len(detail["operators"]) == 9
        assert "total_seconds" in detail["metrics"]

    def test_unknown_run_is_404(self, client):
        # The /v1 envelope's stable code rebuilds the server-side exception
        # class on the client: not a generic "HTTP 404" ServeError.
        from repro.errors import ProvenanceError

        with pytest.raises(ProvenanceError) as info:
            client.run("no-such-run")
        assert "no run 'no-such-run'" in str(info.value)

    def test_unknown_route_is_404(self, client):
        import urllib.error
        import urllib.request

        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(client.base_url + "/nope", timeout=5)
        assert info.value.code == 404

    def test_malformed_query_is_400(self, client):
        from repro.errors import ServeError, TreePatternError

        with pytest.raises(TreePatternError):
            client.query("root{")  # unbalanced pattern
        with pytest.raises(ServeError):
            client.query(RUNNING_EXAMPLE_PATTERN, method="psychic")

    def test_metrics_exposes_request_queue_and_cache_counters(self, client):
        client.query(RUNNING_EXAMPLE_PATTERN)
        text = client.metrics_text()
        assert 'repro_serve_requests_total{endpoint="/v1/query",status="200"}' in text
        assert 'repro_serve_queries_total{method="lazy"}' in text
        assert "repro_serve_queue_depth" in text
        assert "repro_serve_pattern_cache_hits" in text
        assert "repro_serve_segment_cache_misses" in text

    def test_stats_matches_local_registry_plus_serve_counters(
        self, served, client, recorded
    ):
        root, run_id = recorded
        local = Warehouse.open(root).stats(run_id, registry=MetricsRegistry())
        remote = client.run_stats(run_id)
        # Every warehouse metric appears verbatim; the remote registry may
        # additionally fold in this server's repro_serve_* counters.
        extras = [
            metric
            for metric in remote["metrics"]
            if metric not in local.to_json()["metrics"]
        ]
        assert all(metric["name"].startswith("repro_serve_") for metric in extras)
        client.query(RUNNING_EXAMPLE_PATTERN)
        text = client.run_stats(run_id, prometheus=True)
        for line in local.render_prometheus().splitlines():
            assert line in text
        assert 'repro_serve_queries_total{method="lazy"}' in text


class TestQueryEquivalence:
    @pytest.mark.parametrize("method", ["lazy", "eager"])
    def test_served_answer_equals_direct_backtrace(self, served, client, method):
        _, _, root = served
        payload = client.query(RUNNING_EXAMPLE_PATTERN, method=method)
        direct = query_provenance(
            Warehouse.open(root).load(), RUNNING_EXAMPLE_PATTERN
        )
        assert payload["result"] == result_to_json(direct)
        assert payload["method"] == method
        assert payload["server"]["cached"] is False

    def test_eager_run_queries_touch_no_disk(self, served, client):
        _, service, _ = served
        client.query(RUNNING_EXAMPLE_PATTERN, method="eager")
        resident = service._residents[
            (service.warehouse.resolve().run_id, "eager")
        ]
        bytes_after_load = resident.store.metrics.bytes_read
        client.query('root{//name="vx"}', method="eager")
        assert resident.store.metrics.bytes_read == bytes_after_load

    def test_concurrent_queries_identical_to_serial(self, served, recorded):
        """N threads of mixed /query + /runs == the serial answers, byte for byte."""
        server, service, root = served
        _, run_id = recorded
        patterns = [
            RUNNING_EXAMPLE_PATTERN,
            'root{//name="vx"}',
            'root{//id_str="lp"}',
        ]
        serial = {
            pattern: json.dumps(
                result_to_json(
                    query_provenance(Warehouse.open(root).load(), pattern)
                ),
                sort_keys=True,
            )
            for pattern in patterns
        }
        workers = 8
        per_worker = 6
        barrier = threading.Barrier(workers)
        failures = []
        lock = threading.Lock()

        def drive(worker: int):
            client = ServeClient(server.url, policy=NO_BACKOFF)
            barrier.wait()
            for step in range(per_worker):
                pattern = patterns[(worker + step) % len(patterns)]
                try:
                    payload = client.query(pattern)
                    got = json.dumps(payload["result"], sort_keys=True)
                    if got != serial[pattern]:
                        raise AssertionError(f"divergent answer for {pattern}")
                    if [run["run_id"] for run in client.runs()] != [run_id]:
                        raise AssertionError("catalog changed mid-flight")
                except Exception as exc:  # noqa: BLE001 -- collected for assert
                    with lock:
                        failures.append(exc)

        threads = [
            threading.Thread(target=drive, args=(index,)) for index in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert failures == []
        # Single-flight caching makes the counters deterministic even under
        # this much concurrency: one miss per unique (run, pattern, method).
        snap = service.cache.snapshot()
        assert snap["misses"] == len(patterns)
        assert snap["hits"] == workers * per_worker - len(patterns)
        # And decode-under-lock does the same for the segment cache: the
        # lazy store decoded each reachable segment exactly once.
        resident = service._residents[(run_id, "lazy")]
        report = resident.store.size_report()
        assert resident.store.metrics.misses <= len(report.per_operator)


class TestAdmissionAndDeadlines:
    def test_full_queue_answers_429(self, recorded):
        root, _ = recorded
        service = QueryService.open(
            ServeConfig(root=str(root), port=0, workers=1, queue_limit=0, deadline=None),
            registry=MetricsRegistry(),
        )
        release = threading.Event()
        entered = threading.Event()

        def hold():
            entered.set()
            release.wait(10)

        service.query_hook = hold
        with ProvenanceServer(service, port=0) as server:
            client = ServeClient(server.url, policy=RetryPolicy(max_retries=0))
            blocker = threading.Thread(
                target=lambda: client.query(RUNNING_EXAMPLE_PATTERN)
            )
            blocker.start()
            try:
                assert entered.wait(5)
                with pytest.raises(AdmissionError):
                    # A different pattern: must reach the pool, not the cache.
                    client.query('root{//name="vx"}')
            finally:
                release.set()
                blocker.join()
            assert service.pool.stats.rejected == 1
            text = client.metrics_text()
            assert 'status="429"' in text

    def test_deadline_overrun_answers_504(self, recorded):
        root, _ = recorded
        service = QueryService.open(
            ServeConfig(root=str(root), port=0, workers=2, deadline=0.1),
            registry=MetricsRegistry(),
        )
        service.query_hook = lambda: threading.Event().wait(2)
        with ProvenanceServer(service, port=0) as server:
            client = ServeClient(server.url, policy=RetryPolicy(max_retries=0))
            with pytest.raises(TaskTimeoutError):
                client.query(RUNNING_EXAMPLE_PATTERN)
            assert service.pool.stats.timeouts == 1
            # The failure must not be cached: a later, fast ask recomputes.
            service.query_hook = None
            payload = client.query(RUNNING_EXAMPLE_PATTERN)
            assert payload["server"]["cached"] is False


class TestCacheInvalidation:
    def test_new_run_flushes_the_pattern_cache(self, served, captured_example):
        server, service, root = served
        client = ServeClient(server.url, policy=NO_BACKOFF)
        first = client.query(RUNNING_EXAMPLE_PATTERN)
        assert first["server"]["cached"] is False
        second = client.query(RUNNING_EXAMPLE_PATTERN)
        assert second["server"]["cached"] is True
        # Another process records a new run into the same root.
        Warehouse.open(root).record(captured_example, name="example")
        third = client.query(RUNNING_EXAMPLE_PATTERN)
        assert third["server"]["cached"] is False
        assert third["run_id"] != first["run_id"]  # newest-run resolution moved
        assert len(client.runs()) == 2
        assert service.cache.stats.invalidations == 1


class TestForwardEndpoint:
    PATTERN = 'root{//id_str="lp"}'

    def test_forward_matches_library_answer(self, served, client, recorded):
        from repro.audit import trace_forward

        root, run_id = recorded
        payload = client.forward(self.PATTERN)
        direct = trace_forward(Warehouse.open(root), self.PATTERN)
        assert payload["result"] == direct.to_json()
        assert payload["run_id"] == run_id
        assert payload["server"]["cached"] is False
        again = client.forward(self.PATTERN)
        assert again["server"]["cached"] is True
        assert again["result"] == payload["result"]

    def test_cache_keys_are_direction_scoped(self, client):
        """A backward /query must never answer a /forward of the same pattern."""
        client.query(RUNNING_EXAMPLE_PATTERN)
        payload = client.forward(RUNNING_EXAMPLE_PATTERN)
        assert payload["server"]["cached"] is False

    def test_eager_forward_equals_lazy(self, client):
        lazy = client.forward(self.PATTERN, method="lazy")
        eager = client.forward(self.PATTERN, method="eager")
        assert lazy["result"] == eager["result"]

    def test_bad_forward_inputs_are_400(self, client):
        from repro.errors import ServeError, TreePatternError

        with pytest.raises(TreePatternError):
            client.forward("root{")
        with pytest.raises(ServeError):
            client.forward(self.PATTERN, method="psychic")

    def test_forward_admission_and_deadline(self, recorded):
        root, _ = recorded
        service = QueryService.open(
            ServeConfig(root=str(root), port=0, workers=1, queue_limit=0, deadline=None),
            registry=MetricsRegistry(),
        )
        release = threading.Event()
        entered = threading.Event()

        def hold():
            entered.set()
            release.wait(10)

        service.query_hook = hold
        with ProvenanceServer(service, port=0) as server:
            client = ServeClient(server.url, policy=RetryPolicy(max_retries=0))
            blocker = threading.Thread(
                target=lambda: client.forward(self.PATTERN)
            )
            blocker.start()
            try:
                assert entered.wait(5)
                with pytest.raises(AdmissionError):
                    client.forward('root{//name="vx"}')
            finally:
                release.set()
                blocker.join()
            text = client.metrics_text()
            assert 'repro_serve_requests_total{endpoint="/v1/forward",status="429"}' in text


class TestSarEndpoint:
    SUBJECTS = ["lp", "nobody-xyz"]

    def test_sar_matches_library_answer(self, served, client, recorded):
        from repro.audit import subject_access_request

        root, _ = recorded
        payload = client.sar(self.SUBJECTS)
        direct = subject_access_request(Warehouse.open(root), self.SUBJECTS)
        assert payload["report"] == direct
        assert payload["server"]["cached"] is False
        assert client.sar(self.SUBJECTS)["server"]["cached"] is True
        # Subject order must not fragment the cache: the key sorts them.
        flipped = client.sar(list(reversed(self.SUBJECTS)))
        assert flipped["server"]["cached"] is True

    def test_sar_deadline_overrun_is_504(self, recorded):
        root, _ = recorded
        service = QueryService.open(
            ServeConfig(root=str(root), port=0, workers=2, deadline=0.1),
            registry=MetricsRegistry(),
        )
        service.query_hook = lambda: threading.Event().wait(2)
        with ProvenanceServer(service, port=0) as server:
            client = ServeClient(server.url, policy=RetryPolicy(max_retries=0))
            with pytest.raises(TaskTimeoutError):
                client.sar(self.SUBJECTS)
            text = client.metrics_text()
            assert 'endpoint="/v1/audit/sar",status="504"' in text

    def test_bad_sar_inputs_are_400(self, client):
        from repro.errors import AuditError, ServeError

        with pytest.raises(ServeError):
            client.sar([])
        with pytest.raises(AuditError):
            client.sar(["lp"], page=7)  # out of range
        with pytest.raises(AuditError):
            client.sar(["lp"], template="root{//no-placeholder}")

    def test_audit_counters_reach_metrics_and_remote_stats(
        self, client, recorded
    ):
        _, run_id = recorded
        client.forward('root{//id_str="lp"}')
        client.sar(self.SUBJECTS)
        text = client.metrics_text()
        assert 'repro_serve_forward_queries_total{method="lazy"}' in text
        assert "repro_serve_sar_requests_total" in text
        names = {metric["name"] for metric in client.run_stats(run_id)["metrics"]}
        assert "repro_serve_forward_queries_total" in names
        assert "repro_serve_sar_requests_total" in names


class TestGracefulShutdown:
    def test_close_drains_flushes_and_repeats(self, served, client, caplog):
        import logging

        from repro.obs.log import LOGGER_NAME

        _, service, _ = served
        client.query(RUNNING_EXAMPLE_PATTERN)
        client.forward('root{//id_str="lp"}')
        with caplog.at_level(logging.INFO, logger=LOGGER_NAME):
            service.close()
            service.close()  # idempotent: the second call is a no-op
        events = [
            record.structured
            for record in caplog.records
            if getattr(record, "structured", {}).get("event") == "serve-shutdown"
        ]
        assert len(events) == 1
        counters = events[0]["counters"]
        assert counters["repro_serve_queries_total{method=lazy}"] == 1
        assert counters["repro_serve_forward_queries_total{method=lazy}"] == 1
        assert events[0]["resident_runs"] == 1

    def test_signal_stops_serve_forever(self, recorded):
        """SIGTERM must end a blocking serve_forever() without deadlocking."""
        import os
        import signal

        root, _ = recorded
        service = QueryService.open(
            ServeConfig(root=str(root), port=0), registry=MetricsRegistry()
        )
        server = ProvenanceServer(service, port=0)
        server.install_signal_handlers()
        finished = threading.Event()

        def serve():
            server.serve_forever()
            finished.set()

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        client = ServeClient(server.url, policy=NO_BACKOFF)
        assert client.healthz()["status"] == "ok"
        os.kill(os.getpid(), signal.SIGTERM)
        assert finished.wait(5), "serve_forever did not return after SIGTERM"
        assert server.signalled == signal.SIGTERM
        server.close()  # repeat shutdown stays safe after the signal path
        service.close()
        signal.signal(signal.SIGTERM, signal.SIG_DFL)


class TestCliIntegration:
    def test_stats_remote_matches_local(self, served, recorded, capsys):
        server, _, _ = served
        root, run_id = recorded
        assert cli_main(["stats", run_id, "--root", str(root), "--json"]) == 0
        local = capsys.readouterr().out
        assert cli_main(["stats", run_id, "--remote", server.url, "--json"]) == 0
        remote = capsys.readouterr().out
        assert json.loads(remote) == json.loads(local)

    def test_stats_requires_exactly_one_source(self, served, recorded, capsys):
        server, _, _ = served
        root, _ = recorded
        assert cli_main(["stats"]) == 2
        assert (
            cli_main(["stats", "--root", str(root), "--remote", server.url]) == 2
        )
        capsys.readouterr()

    def test_bench_serve_writes_a_sane_report(self, served, tmp_path, capsys):
        server, _, _ = served
        report_path = tmp_path / "serve_bench.json"
        code = cli_main([
            "bench", "serve",
            "--url", server.url,
            "--pattern", RUNNING_EXAMPLE_PATTERN,
            "--requests", "24",
            "--concurrency", "4",
            "--report", str(report_path),
        ])
        assert code == 0
        report = json.loads(report_path.read_text())
        assert report["completed"] == 24
        assert report["errors"] == 0
        assert report["cold"]["count"] == 1  # single-flight: one computation
        assert report["warm"]["count"] == 23
        # The warm path skips the backtrace entirely; it must not be slower
        # than the cold computation it memoised.
        assert report["warm"]["p50_ms"] <= report["cold"]["mean_ms"]
        assert report_path.with_suffix(".txt").exists()
        capsys.readouterr()
