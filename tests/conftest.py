"""Shared fixtures: the paper's running example and small helper sessions."""

from __future__ import annotations

import pytest

from repro.engine.session import Session
from repro.pebble.api import PebbleSession
from repro.workloads.scenarios import (
    RUNNING_EXAMPLE_PATTERN,
    RUNNING_EXAMPLE_TWEETS,
    build_running_example,
)


@pytest.fixture
def session() -> Session:
    """A fresh two-partition engine session."""
    return Session(num_partitions=2)


@pytest.fixture
def pebble() -> PebbleSession:
    """A fresh Pebble session."""
    return PebbleSession(num_partitions=2)


@pytest.fixture
def example_tweets() -> list[dict]:
    """The five tweets of Tab. 1."""
    return [dict(tweet) for tweet in RUNNING_EXAMPLE_TWEETS]


@pytest.fixture
def example_pattern() -> str:
    """The provenance question of Fig. 4."""
    return RUNNING_EXAMPLE_PATTERN


@pytest.fixture
def example_pipeline(session, example_tweets):
    """The Fig. 1 pipeline over the Tab. 1 data."""
    return build_running_example(session, example_tweets)


@pytest.fixture
def captured_example(example_pipeline):
    """The running example executed with provenance capture."""
    return example_pipeline.execute(capture=True)
